// Tree quality metrics beyond DB-MHT's max height. §5.1 lists the
// alternative QoS criteria — "bandwidth bottleneck, maximal latency or
// variance of latencies" — and this module computes all of them for a
// planned tree, so benches and applications can evaluate a plan under
// whichever objective matters to them.
#pragma once

#include <functional>
#include <string>

#include "alm/tree.h"

namespace p2p::alm {

// Per-directed-link available bandwidth (kbps), e.g. bound to
// net::BandwidthModel::PathBottleneckKbps.
using BandwidthFn = std::function<double(ParticipantId, ParticipantId)>;

struct TreeMetrics {
  double max_height_ms = 0.0;    // the DB-MHT objective
  double mean_height_ms = 0.0;   // over non-root members
  double height_stddev_ms = 0.0; // §5.1's "variance of latencies"
  double total_edge_ms = 0.0;    // tree cost (sum of link latencies)
  double max_link_ms = 0.0;      // longest single hop
  std::size_t max_fanout = 0;    // busiest node's child count
  std::size_t depth_hops = 0;    // deepest node in hop count
  // Minimum over tree links of the link's available bandwidth; the rate
  // the session can sustain end-to-end (0 when no BandwidthFn given or
  // the tree has no edges).
  double bottleneck_kbps = 0.0;
};

// Compute all metrics under `latency` (and `bandwidth`, if provided).
TreeMetrics ComputeTreeMetrics(const MulticastTree& tree,
                               const LatencyFn& latency,
                               const BandwidthFn& bandwidth = nullptr);

// Graphviz DOT rendering of the tree: members as circles, nodes in
// `helpers` as boxes, edges labelled with their latency.
std::string TreeToDot(const MulticastTree& tree, const LatencyFn& latency,
                      const std::vector<char>& is_helper = {});

}  // namespace p2p::alm
