// Theoretical bound for the DB-MHT improvement metric (paper §5.2): "the
// upper bound is the latency between the furthest node to the root,
// corresponding to the ideal performance if the root has degree of
// infinity" — i.e. a star topology.
#pragma once

#include <vector>

#include "alm/tree.h"

namespace p2p::alm {

// Height of the ideal (unbounded-degree) tree: max over members of
// l(root, v).
double IdealHeight(ParticipantId root,
                   const std::vector<ParticipantId>& members,
                   const LatencyFn& latency);

// The paper's improvement metric: (H_base − H_alg) / H_base.
double Improvement(double base_height, double alg_height);

}  // namespace p2p::alm
