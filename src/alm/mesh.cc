#include "alm/mesh.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "alm/latency_matrix.h"
#include "obs/scope_timer.h"
#include "util/check.h"
#include "util/rng.h"

namespace p2p::alm {

namespace {

// Working state for one session's mesh, in a dense 0..n-1 index space
// (0 = root, then members in input order).
struct MeshState {
  std::vector<ParticipantId> nodes;  // dense -> participant id
  std::vector<int> cap;              // dense -> degree bound
  std::vector<std::vector<std::uint32_t>> adj;  // dense adjacency lists
  LatencyMatrix matrix;              // all-core over `nodes`

  std::size_t n() const { return nodes.size(); }
  double Lat(std::uint32_t a, std::uint32_t b) const {
    return matrix(nodes[a], nodes[b]);
  }
  bool Linked(std::uint32_t a, std::uint32_t b) const {
    const auto& na = adj[a];
    return std::find(na.begin(), na.end(), b) != na.end();
  }
  bool HasFree(std::uint32_t v) const {
    return adj[v].size() < static_cast<std::size_t>(cap[v]);
  }
  void Link(std::uint32_t a, std::uint32_t b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  void Unlink(std::uint32_t a, std::uint32_t b) {
    adj[a].erase(std::find(adj[a].begin(), adj[a].end(), b));
    adj[b].erase(std::find(adj[b].begin(), adj[b].end(), a));
  }
  // Highest-latency neighbor of `v` (first-seen on ties).
  std::uint32_t WorstNeighbor(std::uint32_t v) const {
    std::uint32_t worst = adj[v][0];
    double worst_lat = Lat(v, worst);
    for (const std::uint32_t u : adj[v]) {
      const double l = Lat(v, u);
      if (l > worst_lat) {
        worst = u;
        worst_lat = l;
      }
    }
    return worst;
  }
  // Does `target` stay reachable from `from` if the direct edge between
  // them is removed? (Edge-removal connectivity probe for refinement.)
  bool ConnectedWithout(std::uint32_t from, std::uint32_t target) const {
    std::vector<char> seen(n(), 0);
    std::vector<std::uint32_t> stack{from};
    seen[from] = 1;
    while (!stack.empty()) {
      const std::uint32_t v = stack.back();
      stack.pop_back();
      for (const std::uint32_t u : adj[v]) {
        if (v == from && u == target) continue;  // the edge under test
        if (seen[u]) continue;
        if (u == target) return true;
        seen[u] = 1;
        stack.push_back(u);
      }
    }
    return false;
  }
};

std::uint64_t SeedFor(const PlanInput& input, const MeshOptions& options) {
  std::uint64_t h = util::Mix64(options.seed ^ input.root);
  for (const ParticipantId m : input.members)
    h = util::Mix64(h ^ (m + 0x9e3779b97f4a7c15ULL));
  return h;
}

LatencyFn TruthFn(const PlanInput& input) {
  if (input.true_latency != nullptr) return input.true_latency;
  const net::LatencyOracle* oracle = input.oracle;
  return [oracle](ParticipantId a, ParticipantId b) {
    return oracle->Latency(a, b);
  };
}

MeshState InitState(const PlanInput& input) {
  P2P_CHECK_MSG(input.true_latency != nullptr || input.oracle != nullptr,
                "MeshPlanner needs a true latency fn or an oracle");
  P2P_CHECK_MSG(input.root < input.degree_bounds.size(),
                "root id out of range");
  MeshState st;
  input.AppendAllMembers(st.nodes);
  st.cap.reserve(st.nodes.size());
  for (const ParticipantId v : st.nodes) {
    P2P_CHECK_MSG(v < input.degree_bounds.size(), "member id out of range");
    P2P_CHECK_MSG(input.degree_bounds[v] >= 1,
                  "mesh needs degree bound >= 1 at participant " << v);
    st.cap.push_back(input.degree_bounds[v]);
  }
  st.adj.assign(st.nodes.size(), {});
  // Truth-only planning: with an oracle and no override fn, fill by direct
  // oracle calls (same fast path as the tree planner's oracle_direct).
  st.matrix = input.oracle != nullptr && input.true_latency == nullptr
                  ? LatencyMatrix(input.degree_bounds.size(), st.nodes,
                                  *input.oracle)
                  : LatencyMatrix(input.degree_bounds.size(), st.nodes,
                                  TruthFn(input));
  return st;
}

// Build + refine; every join/probe/rewire message is counted into
// `*messages`.
void BuildMesh(MeshState& st, const MeshOptions& options, util::Rng& rng,
               std::size_t* messages) {
  const std::size_t n = st.n();
  if (n < 2) return;

  // Join in random order: each newcomer links to a uniformly random
  // already-connected node with free degree (its bootstrap contact).
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  std::vector<char> connected(n, 0);
  connected[order[0]] = 1;
  std::vector<std::uint32_t> pool;
  for (std::size_t k = 1; k < n; ++k) {
    const std::uint32_t v = order[k];
    pool.clear();
    for (std::uint32_t u = 0; u < n; ++u)
      if (connected[u] && st.HasFree(u)) pool.push_back(u);
    P2P_CHECK_MSG(!pool.empty(),
                  "mesh infeasible: every connected node is at its degree "
                  "bound with " << (n - k) << " member(s) still to join");
    const std::uint32_t u = pool[rng.NextBounded(pool.size())];
    st.Link(u, v);
    connected[v] = 1;
    *messages += 1;  // join request accepted
  }

  // Top up toward the target degree with random extra links.
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::size_t target =
        std::min<std::size_t>(options.target_degree,
                              static_cast<std::size_t>(st.cap[i]));
    std::size_t attempts = options.extra_link_attempts;
    while (st.adj[i].size() < target && attempts-- > 0) {
      const auto j = static_cast<std::uint32_t>(rng.NextBounded(n));
      *messages += 1;  // probe
      if (j == i || st.Linked(i, j) || !st.HasFree(j)) continue;
      st.Link(i, j);
      *messages += 1;  // accept
    }
  }

  // Local refinement: probe a random node; if it is closer than the worst
  // current neighbor and dropping that neighbor keeps the mesh connected,
  // rewire.
  for (std::size_t round = 0; round < options.refine_rounds; ++round) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (st.adj[i].empty()) continue;
      const auto j = static_cast<std::uint32_t>(rng.NextBounded(n));
      *messages += 1;  // probe
      if (j == i || st.Linked(i, j) || !st.HasFree(j)) continue;
      const std::uint32_t worst = st.WorstNeighbor(i);
      if (st.Lat(i, j) >= st.Lat(i, worst)) continue;
      if (!st.ConnectedWithout(i, worst)) continue;
      st.Unlink(i, worst);
      st.Link(i, j);
      *messages += 2;  // teardown + setup
    }
  }
}

// Flood/prune delivery keeps the first copy of a message, so the effective
// dissemination structure from the root is the shortest-path tree over the
// mesh. O(n^2) Dijkstra with dense-index tie-breaks: deterministic settle
// order, parents settled before children (AddChild's contract).
MulticastTree ExtractTree(const MeshState& st, const PlanInput& input,
                          const std::vector<char>& alive) {
  MulticastTree tree(input.degree_bounds.size());
  tree.SetRoot(input.root);
  const std::size_t n = st.n();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<std::uint32_t> parent(n, 0);
  std::vector<char> settled(n, 0);
  dist[0] = 0.0;
  for (;;) {
    std::uint32_t best = n;
    for (std::uint32_t v = 0; v < n; ++v)
      if (!settled[v] && alive[v] && dist[v] < (best == n ? kInf : dist[best]))
        best = v;
    if (best == n) break;
    settled[best] = 1;
    if (best != 0) tree.AddChild(st.nodes[parent[best]], st.nodes[best]);
    for (const std::uint32_t u : st.adj[best]) {
      if (settled[u] || !alive[u]) continue;
      const double d = dist[best] + st.Lat(best, u);
      if (d < dist[u]) {
        dist[u] = d;
        parent[u] = best;
      }
    }
  }
  return tree;
}

std::vector<char> ReachableFromRoot(const MeshState& st,
                                    const std::vector<char>& alive) {
  std::vector<char> reached(st.n(), 0);
  if (!alive[0]) return reached;
  std::vector<std::uint32_t> stack{0};
  reached[0] = 1;
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    for (const std::uint32_t u : st.adj[v]) {
      if (!alive[u] || reached[u]) continue;
      reached[u] = 1;
      stack.push_back(u);
    }
  }
  return reached;
}

PlanResult ResultFromState(const MeshState& st, const PlanInput& input,
                           const std::vector<char>& alive,
                           std::size_t messages) {
  PlanResult result{ExtractTree(st, input, alive), 0.0, 0.0, 0, {}, 0};
  result.height_true = result.tree.Height(st.matrix);
  result.height_planning = result.height_true;  // mesh plans on truth
  result.helpers_used = 0;                      // members-only overlay
  result.maintenance_messages = messages;
  return result;
}

}  // namespace

PlanResult MeshPlanner::DoPlan(const PlanInput& input) {
  obs::ScopeTimer plan_timer(
      input.metrics != nullptr ? &input.metrics->profile("alm.plan_ms")
                               : nullptr);
  MeshState st = InitState(input);
  util::Rng rng(SeedFor(input, options_));
  std::size_t messages = 0;
  BuildMesh(st, options_, rng, &messages);
  const std::vector<char> alive(st.n(), 1);
  PlanResult result = ResultFromState(st, input, alive, messages);
  if (input.metrics != nullptr) {
    input.metrics->counter("alm.sessions.planned").Inc();
    input.metrics->histogram("alm.plan.height_ms").Add(result.height_true);
    input.metrics->histogram("alm.plan.helpers")
        .Add(static_cast<double>(result.helpers_used));
  }
  return result;
}

RepairOutcome MeshPlanner::Repair(const PlanInput& original,
                                  const std::vector<ParticipantId>& failed) {
  // Rebuild the pre-failure mesh deterministically (same input, same seed,
  // same draws), then continue the RNG stream for the repair probes.
  MeshState st = InitState(original);
  util::Rng rng(SeedFor(original, options_));
  std::size_t build_messages = 0;
  BuildMesh(st, options_, rng, &build_messages);

  const std::size_t n = st.n();
  std::vector<char> alive(n, 1);
  for (const ParticipantId f : failed) {
    P2P_CHECK_MSG(f != original.root, "cannot repair a failed root");
    bool found = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (st.nodes[i] == f) {
        alive[i] = 0;
        found = true;
      }
    }
    P2P_CHECK_MSG(found, "failed participant " << f << " is not a member");
  }
  // Drop the failed nodes' edges; their ex-neighbors notice via heartbeat
  // silence, which costs no extra messages in this model.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (alive[i]) continue;
    while (!st.adj[i].empty()) st.Unlink(i, st.adj[i][0]);
  }

  RepairOutcome out;
  {
    const std::vector<char> reached = ReachableFromRoot(st, alive);
    for (std::uint32_t v = 1; v < n; ++v)
      if (alive[v] && !reached[v]) ++out.disrupted;
  }

  // Each disconnected component probes random nodes until it lands on an
  // alive, root-reachable one with spare degree; components repair in
  // parallel, so each pass adds the slowest component's probe time.
  // Reconnecting one component can make another reachable, hence passes.
  for (std::size_t pass = 0; pass < 16; ++pass) {
    const std::vector<char> reached = ReachableFromRoot(st, alive);
    // Components of the unreachable-alive subgraph, by smallest dense id.
    std::vector<char> visited(n, 0);
    std::vector<std::uint32_t> reps;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!alive[v] || reached[v] || visited[v]) continue;
      reps.push_back(v);
      std::vector<std::uint32_t> stack{v};
      visited[v] = 1;
      while (!stack.empty()) {
        const std::uint32_t w = stack.back();
        stack.pop_back();
        for (const std::uint32_t u : st.adj[w]) {
          if (visited[u] || !alive[u]) continue;
          visited[u] = 1;
          stack.push_back(u);
        }
      }
    }
    if (reps.empty()) break;

    double pass_latency = 0.0;
    for (const std::uint32_t rep : reps) {
      // Make room first: a representative at its bound sheds its worst
      // (in-component) neighbor.
      while (!st.HasFree(rep)) {
        st.Unlink(rep, st.WorstNeighbor(rep));
        out.repair_messages += 1;
      }
      double cost = 0.0;
      bool linked = false;
      const std::size_t max_probes = 4 * n + 16;
      for (std::size_t p = 0; p < max_probes; ++p) {
        const auto t = static_cast<std::uint32_t>(rng.NextBounded(n));
        out.repair_messages += 1;  // probe
        if (!alive[t]) {
          cost += options_.probe_timeout_ms;
          continue;
        }
        cost += 2.0 * st.Lat(rep, t);  // round trip to an alive responder
        if (t == rep || !reached[t] || st.Linked(rep, t) || !st.HasFree(t))
          continue;
        st.Link(rep, t);
        out.repair_messages += 1;  // accept
        linked = true;
        break;
      }
      if (!linked) {
        // Every random probe missed: fall back to a deterministic sweep for
        // a reachable node with spare degree, then (all saturated) evict
        // the nearest reachable node's worst edge to make room.
        std::uint32_t pick = n;
        for (std::uint32_t t = 0; t < n; ++t) {
          if (t == rep || !alive[t] || !reached[t] || st.Linked(rep, t))
            continue;
          if (st.HasFree(t)) {
            pick = t;
            break;
          }
          if (pick == n || st.Lat(rep, t) < st.Lat(rep, pick)) pick = t;
        }
        if (pick != n) {
          if (!st.HasFree(pick)) {
            st.Unlink(pick, st.WorstNeighbor(pick));
            out.repair_messages += 1;
          }
          st.Link(rep, pick);
          cost += 2.0 * st.Lat(rep, pick);
          out.repair_messages += 2;  // request + accept
          linked = true;
        }
      }
      P2P_CHECK_MSG(linked, "mesh repair found no reachable attach point");
      pass_latency = std::max(pass_latency, cost);
    }
    out.repair_latency_ms += pass_latency;
  }
  {
    const std::vector<char> reached = ReachableFromRoot(st, alive);
    for (std::uint32_t v = 0; v < n; ++v)
      P2P_CHECK_MSG(!alive[v] || reached[v],
                    "mesh repair left a survivor disconnected");
  }

  out.plan = ResultFromState(st, original, alive, out.repair_messages);
  return out;
}

}  // namespace p2p::alm
