// Named planning strategies for an ALM session — the six lines of the
// paper's Figure 8 plus the theoretical bound:
//   AMCast            greedy DB-MHT over M(s) only
//   AMCast+adjust     ... followed by tree adjustment
//   Critical          helper recruitment with oracle pairwise latency
//   Critical+adjust
//   Leafset           helper recruitment with coordinate-estimated latency
//   Leafset+adjust    (the practical algorithm the paper recommends)
//
// The Leafset strategies plan with a hybrid latency: session members know
// their true pairwise latencies (a small group can measure directly), while
// any pair involving a helper candidate is judged through the coordinate
// estimate — "the one used the leafset estimation for vicinity judgment".
// Every strategy's resulting tree is evaluated under the TRUE latency.
#pragma once

#include <string>

#include "alm/adjust.h"
#include "alm/amcast.h"
#include "alm/session.h"
#include "net/latency_oracle.h"
#include "obs/metrics.h"

namespace p2p::alm {

enum class Strategy {
  kAmcast,
  kAmcastAdjust,
  kCritical,
  kCriticalAdjust,
  kLeafset,
  kLeafsetAdjust,
};

std::string StrategyName(Strategy s);
bool StrategyUsesHelpers(Strategy s);
bool StrategyUsesAdjust(Strategy s);
bool StrategyUsesEstimates(Strategy s);

struct PlanInput {
  std::vector<int> degree_bounds;  // by participant id
  ParticipantId root = kNoParticipant;
  std::vector<ParticipantId> members;  // excluding root
  std::vector<ParticipantId> helper_candidates;
  LatencyFn true_latency;
  // Coordinate-based estimate; required only for Leafset strategies.
  LatencyFn estimated_latency;
  // When set, planning matrices are filled by direct oracle calls (no
  // std::function dispatch per pair) and `true_latency` may be left null —
  // participant ids must then be host indices into the oracle. Leafset
  // strategies still need `estimated_latency`; a non-null `true_latency`
  // overrides the oracle for truth queries (hybrid test setups).
  const net::LatencyOracle* oracle = nullptr;
  AmcastOptions amcast;   // helper_radius / helper_min_degree knobs
  AdjustOptions adjust;
  // Optional instrumentation: alm.plan.* histograms and counters plus the
  // wall-clock alm.plan_ms profile. Leave null on parallel planning paths —
  // the registry is not thread-safe.
  obs::MetricsRegistry* metrics = nullptr;
};

struct PlanResult {
  MulticastTree tree;
  double height_true = 0.0;      // evaluated with true latency
  double height_planning = 0.0;  // evaluated with the planning latency
  std::size_t helpers_used = 0;
  AdjustStats adjust_stats;
};

PlanResult PlanSession(const PlanInput& input, Strategy strategy);

}  // namespace p2p::alm
