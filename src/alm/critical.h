// Compatibility shim. The strategy vocabulary now lives in alm/strategy.h
// and the planning entry points in alm/planner.h (TreePlanner behind the
// alm::Planner interface); this header re-exports both so pre-interface
// includers keep compiling for one release. New code should construct a
// planner (directly or via PlannerRegistry) instead of calling
// PlanSession().
#pragma once

#include "alm/planner.h"
#include "alm/strategy.h"

namespace p2p::alm {

// Equivalent to TreePlanner(OptionsForStrategy(strategy)).Plan(input) and
// byte-identical — results and metric snapshots — to the pre-interface
// implementation (enforced by tests/alm_planner_test.cc).
PlanResult PlanSession(const PlanInput& input, Strategy strategy);

}  // namespace p2p::alm
