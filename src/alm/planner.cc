#include "alm/planner.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "alm/mesh.h"
#include "obs/scope_timer.h"
#include "util/check.h"

namespace p2p::alm {

std::size_t MaxFanout(const MulticastTree& tree) {
  std::size_t fanout = 0;
  for (const ParticipantId v : tree.members())
    fanout = std::max(fanout, tree.children(v).size());
  return fanout;
}

Planner::~Planner() = default;

PlanResult Planner::Plan(const PlanInput& input) {
  PlanResult result = DoPlan(input);
  if (input.metrics != nullptr && input.planner_metrics) {
    const std::string ns = "alm.planner." + name() + ".";
    input.metrics->counter(ns + "plans").Inc();
    input.metrics->counter(ns + "maintenance_msgs")
        .Inc(static_cast<double>(result.maintenance_messages));
    input.metrics->histogram(ns + "height_ms").Add(result.height_true);
    input.metrics->histogram(ns + "stress")
        .Add(static_cast<double>(MaxFanout(result.tree)));
    input.metrics->histogram(ns + "helpers")
        .Add(static_cast<double>(result.helpers_used));
  }
  return result;
}

RepairOutcome Planner::Repair(const PlanInput& original,
                              const std::vector<ParticipantId>& failed) {
  std::vector<char> is_failed(original.degree_bounds.size(), 0);
  for (const ParticipantId f : failed) {
    P2P_CHECK_MSG(f != original.root, "cannot repair a failed root");
    P2P_CHECK_MSG(f < is_failed.size(), "failed id out of range");
    is_failed[f] = 1;
  }

  // Who the failures cut off: walk the pre-failure tree from the root,
  // refusing to cross failed nodes; surviving tree nodes never reached are
  // the disrupted set. (Helpers count too — they were forwarding.)
  const PlanResult before = DoPlan(original);
  RepairOutcome out;
  {
    std::vector<char> reached(original.degree_bounds.size(), 0);
    std::vector<ParticipantId> stack{before.tree.root()};
    reached[before.tree.root()] = 1;
    while (!stack.empty()) {
      const ParticipantId v = stack.back();
      stack.pop_back();
      for (const ParticipantId c : before.tree.children(v)) {
        if (is_failed[c] || reached[c]) continue;
        reached[c] = 1;
        stack.push_back(c);
      }
    }
    for (const ParticipantId v : before.tree.members())
      if (!is_failed[v] && !reached[v]) ++out.disrupted;
  }

  // Re-plan over the survivors: failed ids leave the member/helper lists
  // and contribute zero degree, so no planner configuration can route
  // through them.
  PlanInput rest = original;
  const auto alive = [&](ParticipantId v) { return !is_failed[v]; };
  rest.members.erase(
      std::remove_if(rest.members.begin(), rest.members.end(),
                     [&](ParticipantId v) { return !alive(v); }),
      rest.members.end());
  rest.helper_candidates.erase(
      std::remove_if(rest.helper_candidates.begin(),
                     rest.helper_candidates.end(),
                     [&](ParticipantId v) { return !alive(v); }),
      rest.helper_candidates.end());
  for (const ParticipantId f : failed) rest.degree_bounds[f] = 0;

  out.plan = Plan(rest);
  out.repair_messages = 2 * out.plan.tree.size();
  out.repair_latency_ms = 2.0 * out.plan.height_true;
  return out;
}

TreePlannerOptions OptionsForStrategy(Strategy s) {
  TreePlannerOptions opt;
  opt.use_helpers = StrategyUsesHelpers(s);
  opt.use_adjust = StrategyUsesAdjust(s);
  opt.use_estimates = StrategyUsesEstimates(s);
  return opt;
}

PlanResult TreePlanner::DoPlan(const PlanInput& input) {
  obs::ScopeTimer plan_timer(
      input.metrics != nullptr ? &input.metrics->profile("alm.plan_ms")
                               : nullptr);
  P2P_CHECK_MSG(input.true_latency != nullptr || input.oracle != nullptr,
                "PlanSession needs a true latency fn or an oracle");
  P2P_CHECK_MSG(!options_.use_estimates || input.estimated_latency != nullptr,
                "Leafset strategies need an estimated latency");
  const net::LatencyOracle* oracle = input.oracle;
  LatencyFn truth = input.true_latency;
  if (truth == nullptr) {
    truth = [oracle](ParticipantId a, ParticipantId b) {
      return oracle->Latency(a, b);
    };
  }

  // Planning latency: true for oracle strategies; hybrid for Leafset.
  LatencyFn planning = truth;
  if (options_.use_estimates) {
    std::vector<char> is_member(input.degree_bounds.size(), 0);
    is_member[input.root] = 1;
    for (const ParticipantId m : input.members) is_member[m] = 1;
    planning = [is_member = std::move(is_member), truth,
                est = input.estimated_latency](ParticipantId a,
                                               ParticipantId b) {
      return (is_member[a] && is_member[b]) ? truth(a, b) : est(a, b);
    };
  }

  AmcastInput ain;
  ain.degree_bounds = input.degree_bounds;
  ain.root = input.root;
  ain.members = input.members;
  if (options_.use_helpers) ain.helper_candidates = input.helper_candidates;

  AmcastOptions aopt = input.amcast;
  aopt.selection = options_.use_helpers
                       ? (input.amcast.selection == HelperSelection::kNone
                              ? HelperSelection::kMinimaxHeuristic
                              : input.amcast.selection)
                       : HelperSelection::kNone;

  // One planning matrix per session: every latency the build (and the
  // final planning-height evaluation) reads becomes a flat array load
  // instead of a std::function dispatch. Root and members are the core;
  // helper candidates are satellites (their pairwise block is never read).
  std::vector<ParticipantId> core_ids;
  input.AppendAllMembers(core_ids);
  // An oracle without estimate-based planning means every planning latency
  // is a truth query: fill the matrix with direct oracle calls instead of
  // going through the std::function per pair.
  const bool oracle_direct = oracle != nullptr &&
                             input.true_latency == nullptr &&
                             !options_.use_estimates;
  const std::vector<ParticipantId> satellite_ids =
      aopt.selection != HelperSelection::kNone ? ain.helper_candidates
                                               : std::vector<ParticipantId>{};
  const LatencyMatrix planning_matrix =
      oracle_direct ? LatencyMatrix(input.degree_bounds.size(), core_ids,
                                    satellite_ids, *oracle)
                    : LatencyMatrix(input.degree_bounds.size(), core_ids,
                                    satellite_ids, planning);

  AmcastResult built = BuildAmcastTree(ain, planning_matrix, aopt);

  PlanResult result{std::move(built.tree), 0.0, 0.0, built.helpers_used,
                    {}, 0};
  if (options_.use_adjust) {
    // Adjustment always runs on TRUE latencies: by this point every tree
    // node — helpers included — has been contacted to reserve its degree,
    // so the session can measure the actual delays among its (small) tree
    // membership. This is why the paper finds adjustment "remarkably
    // effective especially for Leafset": it repairs the damage done by
    // coordinate-estimate errors during helper selection.
    const LatencyMatrix true_matrix =
        oracle != nullptr && input.true_latency == nullptr
            ? LatencyMatrix(input.degree_bounds.size(), result.tree.members(),
                            *oracle)
            : LatencyMatrix(input.degree_bounds.size(), result.tree.members(),
                            truth);
    result.adjust_stats = AdjustTree(result.tree, input.degree_bounds,
                                     true_matrix, input.adjust);
    result.height_true = result.tree.Height(true_matrix);
  } else {
    // One O(members) evaluation pass; not worth a pairwise matrix fill.
    result.height_true = result.tree.Height(truth);
  }
  result.height_planning = result.tree.Height(planning_matrix);
  if (input.metrics != nullptr) {
    input.metrics->counter("alm.sessions.planned").Inc();
    if (options_.use_adjust)
      input.metrics->counter("alm.sessions.adjusted").Inc();
    input.metrics->histogram("alm.plan.height_ms").Add(result.height_true);
    input.metrics->histogram("alm.plan.helpers")
        .Add(static_cast<double>(result.helpers_used));
  }
  return result;
}

PlannerRegistry& PlannerRegistry::Instance() {
  static PlannerRegistry registry;
  return registry;
}

PlannerRegistry::PlannerRegistry() {
  factories_["tree"] = [] { return std::make_unique<TreePlanner>(); };
  factories_["mesh"] = [] { return std::make_unique<MeshPlanner>(); };
  // The six paper strategies, addressable by their CLI spellings so the
  // conformance battery (and any config file) can reach every corner of
  // the TreePlanner option cube through the factory.
  for (const Strategy s :
       {Strategy::kAmcast, Strategy::kAmcastAdjust, Strategy::kCritical,
        Strategy::kCriticalAdjust, Strategy::kLeafset,
        Strategy::kLeafsetAdjust}) {
    std::string key;
    switch (s) {
      case Strategy::kAmcast: key = "amcast"; break;
      case Strategy::kAmcastAdjust: key = "amcast+adj"; break;
      case Strategy::kCritical: key = "critical"; break;
      case Strategy::kCriticalAdjust: key = "critical+adj"; break;
      case Strategy::kLeafset: key = "leafset"; break;
      case Strategy::kLeafsetAdjust: key = "leafset+adj"; break;
    }
    factories_[key] = [s] {
      return std::make_unique<TreePlanner>(OptionsForStrategy(s));
    };
  }
}

void PlannerRegistry::Register(const std::string& name, Factory factory) {
  P2P_CHECK_MSG(factories_.find(name) == factories_.end(),
                "planner already registered: " << name);
  factories_[name] = std::move(factory);
}

bool PlannerRegistry::Contains(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::unique_ptr<Planner> PlannerRegistry::Create(
    const std::string& name) const {
  const auto it = factories_.find(name);
  P2P_CHECK_MSG(it != factories_.end(), "unknown planner: " << name);
  return it->second();
}

std::vector<std::string> PlannerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

std::unique_ptr<Planner> CreatePlanner(const std::string& name) {
  return PlannerRegistry::Instance().Create(name);
}

}  // namespace p2p::alm
