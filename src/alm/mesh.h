// Self-organizing unstructured multicast mesh (Ripeanu et al., "In Search
// of Simplicity" — PAPERS.md), as a second planner behind alm::Planner.
//
// Construction is decentralized in spirit and deterministic in execution:
// every session member joins by linking to a uniformly random already-
// connected node with free degree, adds random extra links up to a target
// degree, then runs a fixed number of local refinement rounds — probe a
// random node, and if it is closer (latency oracle) than the current worst
// neighbor whose removal keeps the mesh connected, rewire. Data delivery is
// flood/prune: a message takes every mesh edge, a node keeps the first copy
// — so the effective dissemination structure per source is the shortest-
// path tree over the mesh, which DoPlan extracts as a MulticastTree. That
// keeps every PlanResult metric (height_true, stress via fanout, helper
// load) directly comparable with TreePlanner under identical seeds.
//
// What the mesh buys is robustness, and what it pays is overhead: every
// join/probe/rewire is counted into PlanResult::maintenance_messages, and
// Repair() models the local recovery story (disrupted components re-probe
// for alive mesh nodes; no source-side recomputation) against the tree
// planners' global re-plan. The `compare` CLI experiment puts the two
// stories side by side under none/loss/partition scenarios.
#pragma once

#include <cstdint>

#include "alm/planner.h"

namespace p2p::alm {

struct MeshOptions {
  // Desired neighbor count per node; the per-participant degree bound still
  // caps hard (a node with bound 2 keeps 2 neighbors).
  std::size_t target_degree = 4;
  // Local refinement rounds after construction; each round gives every
  // node one random probe and at most one rewire.
  std::size_t refine_rounds = 12;
  // Random-probe attempts per node when topping up to target_degree.
  std::size_t extra_link_attempts = 8;
  // Modelled cost of a probe to a dead node (timeout) during repair, ms.
  double probe_timeout_ms = 200.0;
  // Mixed with the session root and member set to seed the mesh RNG, so
  // distinct sessions get distinct meshes but the same input replans
  // identically.
  std::uint64_t seed = 0x6d657368;  // "mesh"
};

class MeshPlanner : public Planner {
 public:
  MeshPlanner() = default;
  explicit MeshPlanner(MeshOptions options) : options_(options) {}

  std::string name() const override { return "mesh"; }
  const MeshOptions& options() const { return options_; }

  // Mesh repair is local: the deterministically rebuilt pre-failure mesh
  // loses the failed nodes, each disconnected component probes random
  // nodes until it finds an alive, root-reachable one with free degree
  // (falling back to the nearest reachable node when every candidate is
  // saturated), and the dissemination tree is re-extracted. Components
  // repair in parallel, so repair_latency_ms is the max over components of
  // their summed probe round-trips (timeouts included).
  RepairOutcome Repair(const PlanInput& original,
                       const std::vector<ParticipantId>& failed) override;

 protected:
  PlanResult DoPlan(const PlanInput& input) override;

 private:
  MeshOptions options_;
};

}  // namespace p2p::alm
