// MarketScheduler: the hands-off, market-driven coordination layer of
// paper §5.3. There is deliberately NO global scheduler — each session's
// task manager plans on its own; this class only (1) keeps the roster of
// active sessions, (2) makes preemption victims replan (they "lost a
// resource in their current plan"), and (3) runs the periodic rescheduling
// sweeps in which every session re-examines whether a better plan exists.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "pool/task_manager.h"
#include "util/rng.h"

namespace p2p::pool {

class MarketScheduler {
 public:
  MarketScheduler(ResourcePool& pool, TaskManagerOptions options);

  // Admit a session: schedules it immediately and resolves the preemption
  // cascade it triggers.
  TaskManager& AddSession(alm::SessionSpec spec);

  // Session ended: release its resources. Freed capacity is picked up by
  // the others at their next sweep (the paper's "recently freed
  // resources").
  void RemoveSession(alm::SessionId id);

  // One market round: every active session replans, in random order.
  // Each replan's victims are replanned in turn before the sweep moves on.
  void ReschedulingSweep(util::Rng& rng);

  std::size_t session_count() const { return sessions_.size(); }
  TaskManager& session(alm::SessionId id);
  const TaskManager& session(alm::SessionId id) const;
  std::vector<alm::SessionId> session_ids() const;

  std::size_t total_reschedules() const { return reschedules_; }
  std::size_t total_preemptions() const { return preemptions_; }

  // Safety valve for pathological preemption ping-pong (cannot occur with
  // strictly-ordered priorities, but guards the loop).
  std::size_t max_cascade_depth = 256;

 private:
  // Replan `id` and, recursively, every victim. Breadth-first with a
  // visited cap.
  void ScheduleWithCascade(alm::SessionId id);

  ResourcePool& pool_;
  TaskManagerOptions options_;
  std::unordered_map<alm::SessionId, std::unique_ptr<TaskManager>> sessions_;
  std::size_t reschedules_ = 0;
  std::size_t preemptions_ = 0;
};

}  // namespace p2p::pool
