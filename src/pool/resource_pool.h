// ResourcePool: the assembled P2P resource pool — transit-stub network,
// latency oracle, bandwidth population, the DHT ring (one node per end
// system), leafset network coordinates, bandwidth estimates, and the
// degree registry. Participant id == host index == DHT node index
// throughout, which keeps the ALM planner, the registry, and the DHT in
// one index space.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "alm/tree.h"
#include "bwest/estimator.h"
#include "coord/leafset_coords.h"
#include "dht/ring.h"
#include "net/bandwidth_model.h"
#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "pool/degree_table.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace p2p::pool {

struct PoolConfig {
  net::TransitStubParams topology;  // paper defaults: 600 routers, 1200 hosts
  std::size_t leafset_size = 32;
  std::uint64_t seed = 1;

  // Latency-oracle backend. Flat (all-pairs Dijkstra) is the reference and
  // default; hierarchical is exact too (diff-tested) and is what makes the
  // 10k/50k-host presets buildable. Both answer the same TrueLatency().
  net::OracleKind oracle_kind = net::OracleKind::kFlat;
  net::OraclePrecision oracle_precision = net::OraclePrecision::kF64;

  // Degree bounds follow the paper's distribution: P(d)=2^-(d-1) for
  // d=2..8 and the remaining 2^-7 mass on d=9.
  bool paper_degree_distribution = true;
  int uniform_degree_bound = 4;  // used when the flag above is false

  // Network coordinates (Leafset variant). Rounds × simplex iterations
  // trade accuracy for setup time.
  bool build_coordinates = true;
  std::size_t coord_dimensions = 5;
  std::size_t coord_rounds = 8;
  std::size_t coord_nm_iterations = 120;

  // Bandwidth estimation (leafset packet pair).
  bool build_bandwidth_estimates = true;

  // Session planner the pool's task managers fall back to when
  // TaskManagerOptions::planner is empty: an alm::PlannerRegistry name.
  // "tree" is the paper's DB-MHT pipeline (configured per task manager by
  // TaskManagerOptions::strategy); "mesh" the self-organizing mesh.
  std::string default_planner = "tree";
};

// Sample one degree bound from the paper's 2^-i distribution.
int SamplePaperDegreeBound(util::Rng& rng);

class ResourcePool {
 public:
  // `threads` parallelises the latency-oracle Dijkstras (may be null).
  explicit ResourcePool(const PoolConfig& config,
                        util::ThreadPool* threads = nullptr);

  std::size_t size() const { return topology_.host_count(); }

  const PoolConfig& config() const { return config_; }
  const net::TransitStubTopology& topology() const { return topology_; }
  const net::LatencyOracle& oracle() const { return *oracle_; }
  const net::BandwidthModel& bandwidths() const { return *bandwidths_; }
  dht::Ring& ring() { return *ring_; }
  const dht::Ring& ring() const { return *ring_; }
  DegreeRegistry& registry() { return *registry_; }
  const DegreeRegistry& registry() const { return *registry_; }
  const coord::LeafsetCoordSystem& coords() const { return *coords_; }
  const bwest::BandwidthEstimator& bandwidth_estimates() const {
    return *bw_estimator_;
  }

  int degree_bound(std::size_t participant) const {
    return degree_bounds_.at(participant);
  }
  const std::vector<int>& degree_bounds() const { return degree_bounds_; }

  // True pairwise latency (the oracle view).
  double TrueLatency(std::size_t a, std::size_t b) const;
  // Coordinate-estimated latency (requires build_coordinates).
  double EstimatedLatency(std::size_t a, std::size_t b) const;

  alm::LatencyFn TrueLatencyFn() const;
  alm::LatencyFn EstimatedLatencyFn() const;

  util::Rng& rng() { return rng_; }

 private:
  PoolConfig config_;
  util::Rng rng_;
  net::TransitStubTopology topology_;
  std::unique_ptr<net::LatencyOracle> oracle_;
  std::unique_ptr<net::BandwidthModel> bandwidths_;
  std::unique_ptr<dht::Ring> ring_;
  std::unique_ptr<coord::LeafsetCoordSystem> coords_;
  std::unique_ptr<util::Rng> coord_rng_;  // owned stream for coords
  std::unique_ptr<util::Rng> bw_rng_;
  std::unique_ptr<bwest::BandwidthEstimator> bw_estimator_;
  std::vector<int> degree_bounds_;
  std::unique_ptr<DegreeRegistry> registry_;
};

}  // namespace p2p::pool
