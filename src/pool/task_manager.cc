#include "pool/task_manager.h"

#include <algorithm>

#include "alm/bounds.h"
#include "util/check.h"

namespace p2p::pool {

TaskManager::TaskManager(ResourcePool& pool, alm::SessionSpec spec,
                         TaskManagerOptions options)
    : pool_(pool), spec_(std::move(spec)), options_(std::move(options)),
      tree_(pool.size()) {
  P2P_CHECK(spec_.root < pool_.size());
  // "tree" keeps the per-task-manager Strategy knob meaningful; any other
  // registry name takes that planner's own defaults.
  const std::string& planner_name = options_.planner.empty()
                                        ? pool_.config().default_planner
                                        : options_.planner;
  planner_ = planner_name == "tree"
                 ? std::make_unique<alm::TreePlanner>(
                       alm::OptionsForStrategy(options_.strategy))
                 : alm::CreatePlanner(planner_name);
  P2P_CHECK(spec_.priority >= somo::kHighestPriority &&
            spec_.priority <= somo::kLowestPriority);
  is_member_.assign(pool_.size(), 0);
  is_member_[spec_.root] = 1;
  for (const alm::ParticipantId m : spec_.members) {
    P2P_CHECK(m < pool_.size() && m != spec_.root);
    is_member_[m] = 1;
  }
}

bool TaskManager::IsMember(alm::ParticipantId v) const {
  return is_member_[v] != 0;
}

double TaskManager::AmcastBaselineHeight() {
  if (amcast_baseline_ >= 0.0) return amcast_baseline_;
  alm::AmcastInput in;
  in.degree_bounds = pool_.degree_bounds();
  in.root = spec_.root;
  in.members = spec_.members;
  const alm::AmcastResult base =
      BuildAmcastTree(in, pool_.TrueLatencyFn(), alm::AmcastOptions{});
  amcast_baseline_ = base.tree.Height(pool_.TrueLatencyFn());
  return amcast_baseline_;
}

ScheduleOutcome TaskManager::Schedule(const somo::AggregateReport* view) {
  ScheduleOutcome outcome;
  DegreeRegistry& reg = pool_.registry();

  // Release previous reservations (the paper's "switch to the better
  // plan"): planning then sees our prior resources as free again.
  reg.ReleaseSession(spec_.id);
  scheduled_ = false;

  // When planning from a SOMO snapshot, index the advertised availability
  // by node (degrees free or preemptible at this session's priority,
  // straight off the view's degree columns). Nodes absent from the view
  // are treated as unavailable (the newscast has not reported them yet;
  // advertised[n] stays -1).
  std::vector<int> advertised;
  if (view != nullptr) {
    advertised.assign(pool_.size(), -1);
    for (std::size_t i = 0; i < view->size(); ++i) {
      const dht::NodeIndex n = view->node(i);
      if (n >= advertised.size()) continue;
      const auto slots = view->degree_slots(i);
      int avail = view->degrees_total(i) - static_cast<int>(slots.size());
      for (const auto& s : slots) {
        if (s.priority > spec_.priority) ++avail;
      }
      advertised[n] = avail;
    }
  }

  // Effective degree bounds under current contention: a member node grants
  // the session its full bound (member claims dominate); elsewhere the
  // session can use free degrees plus degrees preemptible at its priority.
  alm::PlanInput in;
  in.degree_bounds.resize(pool_.size());
  for (std::size_t v = 0; v < pool_.size(); ++v) {
    if (IsMember(v)) {
      // Sessions talk to their own members directly: live truth.
      in.degree_bounds[v] =
          reg.AvailableFor(v, somo::kHighestPriority, true);
    } else if (view != nullptr) {
      in.degree_bounds[v] = advertised[v] >= 0 ? advertised[v] : 0;
    } else {
      in.degree_bounds[v] = reg.AvailableFor(v, spec_.priority, false);
    }
    if (options_.stream_kbps > 0.0) {
      // Cap by the node's advertised uplink: every CHILD edge carries one
      // outgoing copy of the stream (the parent edge consumes downlink,
      // so non-root nodes get +1 incident edge on top of the child cap).
      const auto& est = pool_.bandwidth_estimates().estimate(v);
      const double up =
          est.up_samples > 0 ? est.up_kbps
                             : pool_.bandwidths().host(v).up_kbps;
      const int child_cap = static_cast<int>(up / options_.stream_kbps);
      const int allowed = v == spec_.root ? child_cap : child_cap + 1;
      in.degree_bounds[v] = std::min(in.degree_bounds[v], allowed);
    }
  }
  in.root = spec_.root;
  in.members = spec_.members;
  for (std::size_t v = 0; v < pool_.size(); ++v) {
    if (IsMember(v)) continue;
    if (in.degree_bounds[v] >= options_.helper_min_available)
      in.helper_candidates.push_back(v);
  }
  in.true_latency = pool_.TrueLatencyFn();
  if (planner_->NeedsEstimates())
    in.estimated_latency = pool_.EstimatedLatencyFn();
  in.amcast = options_.amcast;
  in.adjust = options_.adjust;

  // The paper assumes non-overlapping member sets; when sessions DO share
  // members (a host in two conferences), the shared node's guaranteed
  // degree is split and the DB-MHT can become infeasible. Degrade
  // gracefully: report failure instead of crashing the market.
  alm::PlanResult plan{alm::MulticastTree(0), 0.0, 0.0, 0, {}, 0};
  try {
    plan = planner_->Plan(in);
  } catch (const util::CheckError&) {
    return outcome;  // ok == false; previous reservation already released
  }

  // Reserve: one claim per incident tree edge at every tree node.
  std::vector<alm::SessionId> preempted;
  for (const alm::ParticipantId v : plan.tree.members()) {
    const int need = plan.tree.Degree(v);
    for (int k = 0; k < need; ++k) {
      const ClaimResult cr =
          reg.Claim(v, spec_.id, IsMember(v) ? somo::kHighestPriority
                                             : spec_.priority,
                    IsMember(v));
      if (!cr.ok) {
        // A live node refused what the snapshot advertised. Roll back and
        // let the caller replan with fresher knowledge. Impossible when
        // planning straight from the registry (nothing runs concurrently).
        P2P_CHECK_MSG(view != nullptr, "claim failed at node " << v);
        reg.ReleaseSession(spec_.id);
        outcome.stale_conflict = true;
        return outcome;
      }
      if (cr.preemption && cr.preempted != spec_.id)
        preempted.push_back(cr.preempted);
    }
  }
  std::sort(preempted.begin(), preempted.end());
  preempted.erase(std::unique(preempted.begin(), preempted.end()),
                  preempted.end());

  tree_ = std::move(plan.tree);
  scheduled_ = true;
  height_true_ = plan.height_true;
  helpers_used_ = plan.helpers_used;

  outcome.ok = true;
  outcome.height_true = height_true_;
  outcome.helpers_used = helpers_used_;
  outcome.preempted = std::move(preempted);
  return outcome;
}

void TaskManager::Teardown() {
  pool_.registry().ReleaseSession(spec_.id);
  scheduled_ = false;
}

double TaskManager::CurrentImprovement() {
  P2P_CHECK_MSG(scheduled_, "session not scheduled");
  return alm::Improvement(AmcastBaselineHeight(), height_true_);
}

}  // namespace p2p::pool
