// The Figure-10 experiment driver: S concurrent ALM sessions with
// non-overlapping 20-node member sets and priorities 1..3 compete for the
// 1200-node resource pool through the market scheduler. Reports, per
// priority class, the mean improvement over each session's own AMCast
// baseline and the mean number of helper nodes retained — plus the
// theoretical lower bound (AMCast+adjust, members only) and upper bound
// (Leafset+adjust with the whole pool to itself).
#pragma once

#include <array>
#include <cstdint>

#include "obs/metrics.h"
#include "pool/market.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace p2p::pool {

struct MultiSessionParams {
  std::size_t session_count = 10;      // paper sweeps 10..60
  std::size_t members_per_session = 20;
  // Market rounds after all arrivals (the paper's periodic re-runs).
  std::size_t rescheduling_sweeps = 2;
  std::uint64_t seed = 42;
  TaskManagerOptions options;
  // Compute the per-session upper bound (costly: one full solo plan per
  // session).
  bool compute_upper_bound = true;
  // Optional worker pool for the per-session bound computations, which are
  // independent of each other and of the (sequential) market phase.
  // Results are identical to a sequential run: each session's plans depend
  // only on its own spec, and the accumulator folds stay in spec order.
  // Leave null when the caller already parallelises at a coarser grain
  // (e.g. fig10 runs whole experiments on a pool) — nesting would
  // oversubscribe.
  util::ThreadPool* workers = nullptr;
  // Optional registry for pool.* metrics (session height/improvement
  // histograms, reschedule/preemption counters, utilisation gauge) and the
  // bounds/market phase wall-clock profiles. Metric folds happen only in
  // the sequential phases, so attaching a registry is safe with `workers`.
  obs::MetricsRegistry* metrics = nullptr;
};

struct PriorityClassStats {
  util::Accumulator improvement;    // (H_AMCast − H)/H_AMCast
  util::Accumulator helpers_used;   // helper nodes in the final tree
  std::size_t sessions = 0;
};

struct MultiSessionResult {
  // Indexed by priority 1..3 (slot 0 unused).
  std::array<PriorityClassStats, 4> by_priority;
  util::Accumulator lower_bound_improvement;   // AMCast+adjust
  util::Accumulator upper_bound_improvement;   // Leafset+adjust, solo
  std::size_t reschedules = 0;
  std::size_t preemptions = 0;
  double pool_utilisation = 0.0;  // used degrees / total capacity
};

// Runs one experiment over a pre-built pool. The pool's degree registry
// must be empty on entry; it is drained (all sessions torn down) on exit.
MultiSessionResult RunMultiSessionExperiment(ResourcePool& pool,
                                             const MultiSessionParams& params);

}  // namespace p2p::pool
