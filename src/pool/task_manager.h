// TaskManager: the per-session scheduler (paper §5.3). The root of an ALM
// session plans its tree with the Leafset+adjust algorithm against the
// resource availability SOMO advertises (here: the degree registry), claims
// the degrees the plan needs, and records which sessions it preempted so
// the market layer can make the victims replan. "Global scheduling is
// never attempted."
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "alm/planner.h"
#include "alm/session.h"
#include "pool/resource_pool.h"

namespace p2p::pool {

struct TaskManagerOptions {
  // alm::PlannerRegistry name; empty defers to PoolConfig::default_planner.
  // "tree" builds a TreePlanner configured from `strategy` below; any other
  // name is created through the registry (e.g. "mesh").
  std::string planner;
  alm::Strategy strategy = alm::Strategy::kLeafsetAdjust;
  alm::AmcastOptions amcast;
  alm::AdjustOptions adjust;
  // A pool node qualifies as helper candidate if the scheduler could obtain
  // at least this many degrees on it (condition 2 of the helper search).
  int helper_min_available = 4;
  // Per-link stream rate of the session (kbps). When positive, a node's
  // usable degree is additionally capped by its estimated uplink:
  // floor(up_kbps / stream_kbps) concurrent outgoing streams — this is
  // what the bandwidth fields of the SOMO report (paper Figure 7) exist
  // for. 0 disables the bandwidth constraint ("degree" then models the
  // end system's limit as in §5.1).
  double stream_kbps = 0.0;
};

struct ScheduleOutcome {
  bool ok = false;
  double height_true = 0.0;
  std::size_t helpers_used = 0;
  // Sessions that lost at least one degree to this plan (deduplicated).
  std::vector<alm::SessionId> preempted;
  // Scheduling from a stale SOMO view: a reservation the view promised was
  // refused by the live node. The plan was rolled back; the caller should
  // replan with fresher information.
  bool stale_conflict = false;
};

class TaskManager {
 public:
  TaskManager(ResourcePool& pool, alm::SessionSpec spec,
              TaskManagerOptions options);

  const alm::SessionSpec& spec() const { return spec_; }

  // Plan against current availability and reserve. Any previous
  // reservation of this session is released first (the paper's periodic
  // re-run does exactly this swap).
  ScheduleOutcome Schedule() { return Schedule(nullptr); }

  // Plan against a SOMO snapshot instead of the live registry (`view` is
  // what the root's aggregate advertised; it may be stale). Member nodes
  // are still planned at their true full bound — a session talks to its
  // own members directly. Reservations go to the LIVE registry; if a node
  // refuses a claim the view promised, everything is rolled back and the
  // outcome reports a stale conflict.
  ScheduleOutcome Schedule(const somo::AggregateReport* view);

  // Release every reservation (session ended).
  void Teardown();

  bool scheduled() const { return scheduled_; }
  double current_height() const { return height_true_; }
  std::size_t current_helpers() const { return helpers_used_; }
  const alm::MulticastTree* current_tree() const {
    return scheduled_ ? &tree_ : nullptr;
  }

  // The session's own AMCast baseline height (members only, full member
  // degrees — always achievable), used for the improvement metric. Cached.
  double AmcastBaselineHeight();

  // (H_AMCast − H_current)/H_AMCast for the currently reserved plan.
  double CurrentImprovement();

 private:
  bool IsMember(alm::ParticipantId v) const;

  ResourcePool& pool_;
  alm::SessionSpec spec_;
  TaskManagerOptions options_;
  std::unique_ptr<alm::Planner> planner_;
  std::vector<char> is_member_;
  alm::MulticastTree tree_;
  bool scheduled_ = false;
  double height_true_ = 0.0;
  std::size_t helpers_used_ = 0;
  double amcast_baseline_ = -1.0;
};

}  // namespace p2p::pool
