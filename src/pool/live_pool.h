// The full closed loop of the paper, run end-to-end in simulated time:
// nodes publish their degree tables / coordinates / bandwidth in SOMO
// reports; SOMO gathers them to the root on its reporting cycle; task
// managers of arriving sessions query that (possibly stale) global view,
// plan, and go out to reserve degrees on the live nodes. Stale knowledge
// shows up as refused reservations, which trigger a replan against the
// live state — the cost of SOMO's staleness made measurable.
//
// RunStalenessExperiment sweeps the behaviour for one SOMO reporting
// interval; the ablation bench sweeps the interval itself.
#pragma once

#include <cstdint>

#include "obs/alert.h"
#include "pool/market.h"
#include "pool/resource_pool.h"
#include "sim/simulation.h"
#include "somo/somo.h"
#include "util/stats.h"

namespace p2p::pool {

struct LiveExperimentParams {
  std::size_t session_count = 20;
  std::size_t members_per_session = 20;
  // Sessions arrive uniformly over this window (simulated ms).
  double arrival_window_ms = 60000.0;
  // Horizon after the last arrival before measuring.
  double settle_ms = 60000.0;
  somo::SomoConfig somo;  // reporting interval / gather discipline
  TaskManagerOptions options;
  std::uint64_t seed = 1;
  // Optional alert engine evaluated on the experiment's virtual-time
  // cadence (every alert_eval_ms, or the SOMO reporting interval when 0).
  // Callers attach rules over the experiment simulation's registry —
  // e.g. pool.stale_conflicts rate — before calling; the event log is
  // theirs to snapshot afterwards. Not owned.
  obs::AlertEngine* alerts = nullptr;
  double alert_eval_ms = 0.0;
};

struct LiveExperimentResult {
  util::Accumulator improvement;      // settled, per session
  util::Accumulator helpers;          // settled, per session
  std::size_t stale_conflicts = 0;    // refused reservations (then replanned)
  std::size_t scheduled_sessions = 0;
  double mean_view_staleness_ms = 0.0;  // root-view staleness when queried
  std::size_t somo_messages = 0;
};

// Runs one live experiment over a pre-built pool (registry must be empty;
// drained on exit).
LiveExperimentResult RunStalenessExperiment(ResourcePool& pool,
                                            const LiveExperimentParams& params);

}  // namespace p2p::pool
