#include "pool/degree_table.h"

#include <algorithm>

#include "util/check.h"

namespace p2p::pool {

DegreeRegistry::DegreeRegistry(std::vector<int> degree_bounds) {
  slots_.resize(degree_bounds.size());
  tables_.resize(degree_bounds.size());
  for (std::size_t n = 0; n < degree_bounds.size(); ++n) {
    P2P_CHECK_MSG(degree_bounds[n] >= 0, "negative degree bound");
    tables_[n].total = degree_bounds[n];
  }
}

void DegreeRegistry::SyncTable(std::size_t node) {
  auto& t = tables_[node];
  t.taken.clear();
  t.taken.reserve(slots_[node].size());
  for (const Slot& s : slots_[node])
    t.taken.push_back({s.session, s.priority});
}

int DegreeRegistry::AvailableFor(std::size_t node, int priority,
                                 bool is_member) const {
  const auto& slots = slots_.at(node);
  int n = tables_[node].total - static_cast<int>(slots.size());
  for (const Slot& s : slots) {
    const bool preemptible =
        s.priority > priority ||
        (s.priority == priority && is_member && !s.is_member);
    if (preemptible) ++n;
  }
  return n;
}

ClaimResult DegreeRegistry::Claim(std::size_t node, alm::SessionId session,
                                  int priority, bool is_member) {
  auto& slots = slots_.at(node);
  ClaimResult result;
  if (static_cast<int>(slots.size()) < tables_[node].total) {
    slots.push_back({session, priority, is_member});
    SyncTable(node);
    result.ok = true;
    return result;
  }
  // Preempt the weakest preemptible slot: largest priority value first,
  // helper claims before member claims at equal priority.
  auto weakest = slots.end();
  for (auto it = slots.begin(); it != slots.end(); ++it) {
    const bool preemptible =
        it->priority > priority ||
        (it->priority == priority && is_member && !it->is_member);
    if (!preemptible) continue;
    if (weakest == slots.end() || it->priority > weakest->priority ||
        (it->priority == weakest->priority && !it->is_member &&
         weakest->is_member)) {
      weakest = it;
    }
  }
  if (weakest == slots.end()) return result;  // nothing claimable
  result.preempted = weakest->session;
  result.preemption = true;
  *weakest = {session, priority, is_member};
  SyncTable(node);
  result.ok = true;
  return result;
}

int DegreeRegistry::Release(std::size_t node, alm::SessionId session) {
  auto& slots = slots_.at(node);
  const auto it = std::remove_if(
      slots.begin(), slots.end(),
      [session](const Slot& s) { return s.session == session; });
  const int n = static_cast<int>(slots.end() - it);
  slots.erase(it, slots.end());
  if (n > 0) SyncTable(node);
  return n;
}

std::vector<std::size_t> DegreeRegistry::ReleaseSession(
    alm::SessionId session) {
  std::vector<std::size_t> affected;
  for (std::size_t n = 0; n < slots_.size(); ++n) {
    if (Release(n, session) > 0) affected.push_back(n);
  }
  return affected;
}

int DegreeRegistry::HeldBy(std::size_t node, alm::SessionId session) const {
  return static_cast<int>(
      std::count_if(slots_.at(node).begin(), slots_.at(node).end(),
                    [session](const Slot& s) { return s.session == session; }));
}

std::size_t DegreeRegistry::TotalUsed() const {
  std::size_t n = 0;
  for (const auto& s : slots_) n += s.size();
  return n;
}

std::size_t DegreeRegistry::TotalCapacity() const {
  std::size_t n = 0;
  for (const auto& t : tables_) n += static_cast<std::size_t>(t.total);
  return n;
}

void DegreeRegistry::CheckInvariants() const {
  for (std::size_t n = 0; n < slots_.size(); ++n) {
    P2P_CHECK_MSG(static_cast<int>(slots_[n].size()) <= tables_[n].total,
                  "node " << n << " over-committed");
    P2P_CHECK(tables_[n].taken.size() == slots_[n].size());
  }
}

}  // namespace p2p::pool
