#include "pool/live_pool.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace p2p::pool {

LiveExperimentResult RunStalenessExperiment(
    ResourcePool& pool, const LiveExperimentParams& params) {
  P2P_CHECK(pool.registry().TotalUsed() == 0);
  P2P_CHECK(params.session_count * params.members_per_session <=
            pool.size());

  util::Rng rng(params.seed);
  sim::Simulation sim(params.seed ^ 0x51f15e);
  sim.transport().EnablePerHostStats(pool.size());

  // SOMO publishes each node's live degree table plus its measured
  // attributes (the Figure-7 report), with the host's own transport
  // counters folded in as in-band telemetry — the compressed record the
  // wire codec charges for.
  somo::SomoProtocol somo(sim, pool.ring(), params.somo,
                          [&](dht::NodeIndex n) {
                            somo::NodeReport r;
                            r.node = n;
                            r.host = pool.ring().node(n).host();
                            r.generated_at = sim.now();
                            r.coordinates = pool.coords().coord(n);
                            const auto& est =
                                pool.bandwidth_estimates().estimate(n);
                            r.up_kbps = est.up_kbps;
                            r.down_kbps = est.down_kbps;
                            r.degrees = pool.registry().table(n);
                            const auto& hs =
                                sim.transport().host_stats(r.host);
                            r.telemetry.msgs_sent = hs.sent;
                            r.telemetry.msgs_delivered = hs.delivered;
                            r.telemetry.msgs_dropped = hs.dropped;
                            r.telemetry.bytes_sent = hs.bytes;
                            r.telemetry.sampled_at = sim.now();
                            return r;
                          });
  somo.Start();

  if (params.alerts != nullptr) {
    const double eval_ms = params.alert_eval_ms > 0.0
                               ? params.alert_eval_ms
                               : params.somo.report_interval_ms;
    sim.Every(eval_ms, eval_ms,
              [&] { params.alerts->Evaluate(sim.now()); });
  }

  // Carve disjoint member blocks.
  std::vector<std::size_t> hosts(pool.size());
  std::iota(hosts.begin(), hosts.end(), 0);
  rng.Shuffle(hosts);
  std::vector<alm::SessionSpec> specs;
  for (std::size_t s = 0; s < params.session_count; ++s) {
    alm::SessionSpec spec;
    spec.id = static_cast<alm::SessionId>(s + 1);
    spec.priority = static_cast<int>(
        rng.UniformInt(somo::kHighestPriority, somo::kLowestPriority));
    const std::size_t base = s * params.members_per_session;
    spec.root = hosts[base];
    for (std::size_t k = 1; k < params.members_per_session; ++k)
      spec.members.push_back(hosts[base + k]);
    spec.start_ms = rng.Uniform(0.0, params.arrival_window_ms);
    specs.push_back(std::move(spec));
  }

  LiveExperimentResult result;
  std::vector<std::unique_ptr<TaskManager>> managers;
  managers.resize(specs.size());
  util::Accumulator staleness;

  // A session schedules from the SOMO root view; on a stale conflict it
  // replans immediately against the live registry ("contacting the nodes
  // reveals the truth"). Victims of preemption replan the same way.
  std::function<void(std::size_t)> schedule_from_view =
      [&](std::size_t si) {
        TaskManager& tm = *managers[si];
        const auto* view =
            somo.RootReport().empty() ? nullptr : &somo.RootReport();
        if (view != nullptr) {
          staleness.Add(somo.RootStalenessMs());
          sim.metrics()
              .histogram("pool.schedule.view_staleness_ms")
              .Add(somo.RootStalenessMs());
        }
        ScheduleOutcome out = tm.Schedule(view);
        if (out.stale_conflict) {
          ++result.stale_conflicts;
          sim.metrics().counter("pool.stale_conflicts").Inc();
          out = tm.Schedule();  // live fallback
        }
        for (const alm::SessionId victim : out.preempted) {
          const auto vi = static_cast<std::size_t>(victim - 1);
          if (managers[vi] != nullptr) {
            // Victim replans a beat later (it must notice the loss first).
            sim.After(100.0, [&, vi] {
              if (managers[vi] != nullptr) schedule_from_view(vi);
            });
          }
        }
      };

  for (std::size_t si = 0; si < specs.size(); ++si) {
    managers[si] = std::make_unique<TaskManager>(pool, specs[si],
                                                 params.options);
    sim.At(specs[si].start_ms, [&, si] { schedule_from_view(si); });
    // The paper's periodic re-run: every 20 s each session re-examines
    // its plan against the then-current newscast.
    sim.Every(20000.0, specs[si].start_ms + 20000.0, [&, si] {
      if (managers[si] != nullptr && sim.now() < params.arrival_window_ms +
                                                     params.settle_ms) {
        schedule_from_view(si);
      }
    });
  }

  sim.RunUntil(params.arrival_window_ms + params.settle_ms);

  for (std::size_t si = 0; si < specs.size(); ++si) {
    TaskManager& tm = *managers[si];
    if (tm.scheduled()) {
      ++result.scheduled_sessions;
      result.improvement.Add(tm.CurrentImprovement());
      result.helpers.Add(static_cast<double>(tm.current_helpers()));
    }
    tm.Teardown();
  }
  somo.Stop();
  result.mean_view_staleness_ms = staleness.mean();
  result.somo_messages = somo.messages_sent();
  P2P_CHECK(pool.registry().TotalUsed() == 0);
  return result;
}

}  // namespace p2p::pool
