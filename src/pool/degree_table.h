// DegreeRegistry: the authoritative bookkeeping of every node's degree
// table (paper Figure 9). Task managers claim and release degrees here;
// the SOMO report plumbing snapshots these tables into NodeReports.
//
// Priority semantics (paper §5.3): a claim at priority p may preempt a slot
// held at a numerically larger (= lower-class) priority. Claims carry a
// member flag — a session holds priority 1 *as a member* at its own nodes,
// and member claims dominate equal-priority helper claims, which is what
// makes the paper's guarantee ("each session can always run at least its
// AMCast+adjust plan") hold even against priority-1 competitors' helpers.
#pragma once

#include <cstddef>
#include <vector>

#include "alm/session.h"
#include "somo/report.h"

namespace p2p::pool {

struct ClaimResult {
  bool ok = false;
  // Valid when a preemption happened: the victim session.
  alm::SessionId preempted = somo::kNoSession;
  bool preemption = false;
};

class DegreeRegistry {
 public:
  explicit DegreeRegistry(std::vector<int> degree_bounds);

  std::size_t node_count() const { return tables_.size(); }
  const somo::DegreeTable& table(std::size_t node) const {
    return tables_.at(node);
  }
  int bound(std::size_t node) const { return tables_.at(node).total; }

  // Degrees a claim (priority, is_member) could obtain at `node`,
  // counting its own already-held slots as unavailable.
  int AvailableFor(std::size_t node, int priority, bool is_member) const;

  // Claim one degree at `node` for `session` with the given effective
  // priority. Prefers free slots; otherwise preempts the weakest
  // preemptible slot (largest priority value, helper before member).
  ClaimResult Claim(std::size_t node, alm::SessionId session, int priority,
                    bool is_member);

  // Release all slots `session` holds at `node`; returns how many.
  int Release(std::size_t node, alm::SessionId session);

  // Release every slot of `session`; returns the affected nodes.
  std::vector<std::size_t> ReleaseSession(alm::SessionId session);

  // Slots held by `session` at `node`.
  int HeldBy(std::size_t node, alm::SessionId session) const;

  // Total slots in use across all nodes (for utilisation metrics).
  std::size_t TotalUsed() const;
  std::size_t TotalCapacity() const;

  // Consistency check: every table within bounds, member flags coherent.
  void CheckInvariants() const;

 private:
  struct Slot {
    alm::SessionId session;
    int priority;
    bool is_member;
  };
  // Parallel to somo::DegreeTable but with the member flag; the public
  // table() view is regenerated on mutation.
  std::vector<std::vector<Slot>> slots_;
  std::vector<somo::DegreeTable> tables_;

  void SyncTable(std::size_t node);
};

}  // namespace p2p::pool
