#include "pool/resource_pool.h"

#include "util/check.h"

namespace p2p::pool {

int SamplePaperDegreeBound(util::Rng& rng) {
  // P(d) = 2^-(d-1) for d = 2..8; the remaining 2^-7 mass on d = 9.
  const double u = rng.NextDouble();
  double acc = 0.0;
  double p = 0.5;
  for (int d = 2; d <= 8; ++d) {
    acc += p;
    if (u < acc) return d;
    p *= 0.5;
  }
  return 9;
}

ResourcePool::ResourcePool(const PoolConfig& config,
                           util::ThreadPool* threads)
    : config_(config), rng_(config.seed) {
  // Substrates are seeded from independent substreams so that toggling one
  // feature (e.g. coordinates) does not reshuffle another's randomness.
  util::Rng topo_rng = rng_.Substream(1);
  util::Rng bw_model_rng = rng_.Substream(2);
  util::Rng degree_rng = rng_.Substream(3);
  coord_rng_ = std::make_unique<util::Rng>(rng_.Substream(4));
  bw_rng_ = std::make_unique<util::Rng>(rng_.Substream(5));

  topology_ = net::GenerateTransitStub(config_.topology, topo_rng);
  oracle_ = std::make_unique<net::LatencyOracle>(
      topology_, net::OracleOptions{.kind = config_.oracle_kind,
                                    .precision = config_.oracle_precision,
                                    .pool = threads});
  bandwidths_ = std::make_unique<net::BandwidthModel>(
      net::GnutellaAccessClasses(), topology_.host_count(), bw_model_rng);

  // One DHT node per end system, joined in host order so that
  // participant id == host index == node index.
  ring_ = std::make_unique<dht::Ring>(config_.leafset_size, oracle_.get());
  for (net::HostIdx h = 0; h < topology_.host_count(); ++h) {
    const dht::NodeIndex n = ring_->JoinHashed(h);
    P2P_CHECK(n == h);
  }
  ring_->StabilizeAll();

  degree_bounds_.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    degree_bounds_.push_back(config_.paper_degree_distribution
                                 ? SamplePaperDegreeBound(degree_rng)
                                 : config_.uniform_degree_bound);
  }
  registry_ = std::make_unique<DegreeRegistry>(degree_bounds_);

  if (config_.build_coordinates) {
    coord::LeafsetCoordOptions copt;
    copt.dimensions = config_.coord_dimensions;
    copt.nm.max_iterations = config_.coord_nm_iterations;
    coords_ = std::make_unique<coord::LeafsetCoordSystem>(*ring_, copt,
                                                          *coord_rng_);
    coords_->RunRounds(config_.coord_rounds);
  }

  if (config_.build_bandwidth_estimates) {
    bw_estimator_ = std::make_unique<bwest::BandwidthEstimator>(
        *ring_, *bandwidths_, bwest::PacketPairOptions{}, *bw_rng_);
    bw_estimator_->EstimateAll();
  }
}

double ResourcePool::TrueLatency(std::size_t a, std::size_t b) const {
  return oracle_->Latency(a, b);
}

double ResourcePool::EstimatedLatency(std::size_t a, std::size_t b) const {
  P2P_CHECK_MSG(coords_ != nullptr, "coordinates were not built");
  if (a == b) return 0.0;
  return coords_->Predict(a, b);
}

alm::LatencyFn ResourcePool::TrueLatencyFn() const {
  return [this](std::size_t a, std::size_t b) { return TrueLatency(a, b); };
}

alm::LatencyFn ResourcePool::EstimatedLatencyFn() const {
  P2P_CHECK_MSG(coords_ != nullptr, "coordinates were not built");
  return [this](std::size_t a, std::size_t b) {
    return EstimatedLatency(a, b);
  };
}

}  // namespace p2p::pool
