#include "pool/market.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace p2p::pool {

MarketScheduler::MarketScheduler(ResourcePool& pool,
                                 TaskManagerOptions options)
    : pool_(pool), options_(options) {}

TaskManager& MarketScheduler::session(alm::SessionId id) {
  const auto it = sessions_.find(id);
  P2P_CHECK_MSG(it != sessions_.end(), "unknown session " << id);
  return *it->second;
}

const TaskManager& MarketScheduler::session(alm::SessionId id) const {
  const auto it = sessions_.find(id);
  P2P_CHECK_MSG(it != sessions_.end(), "unknown session " << id);
  return *it->second;
}

std::vector<alm::SessionId> MarketScheduler::session_ids() const {
  std::vector<alm::SessionId> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, tm] : sessions_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TaskManager& MarketScheduler::AddSession(alm::SessionSpec spec) {
  const alm::SessionId id = spec.id;
  P2P_CHECK_MSG(sessions_.find(id) == sessions_.end(),
                "duplicate session id " << id);
  sessions_.emplace(id,
                    std::make_unique<TaskManager>(pool_, std::move(spec),
                                                  options_));
  ScheduleWithCascade(id);
  return *sessions_.at(id);
}

void MarketScheduler::RemoveSession(alm::SessionId id) {
  auto it = sessions_.find(id);
  P2P_CHECK_MSG(it != sessions_.end(), "unknown session " << id);
  it->second->Teardown();
  sessions_.erase(it);
}

void MarketScheduler::ScheduleWithCascade(alm::SessionId id) {
  std::deque<alm::SessionId> queue{id};
  std::size_t steps = 0;
  while (!queue.empty()) {
    const alm::SessionId cur = queue.front();
    queue.pop_front();
    const auto it = sessions_.find(cur);
    if (it == sessions_.end()) continue;  // victim ended meanwhile
    const ScheduleOutcome out = it->second->Schedule();
    ++reschedules_;
    preemptions_ += out.preempted.size();
    for (const alm::SessionId victim : out.preempted) {
      if (std::find(queue.begin(), queue.end(), victim) == queue.end())
        queue.push_back(victim);
    }
    if (++steps >= max_cascade_depth) break;
  }
}

void MarketScheduler::ReschedulingSweep(util::Rng& rng) {
  std::vector<alm::SessionId> order = session_ids();
  rng.Shuffle(order);
  for (const alm::SessionId id : order) {
    if (sessions_.find(id) == sessions_.end()) continue;
    ScheduleWithCascade(id);
  }
}

}  // namespace p2p::pool
