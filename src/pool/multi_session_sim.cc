#include "pool/multi_session_sim.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "alm/bounds.h"
#include "obs/scope_timer.h"
#include "util/check.h"

namespace p2p::pool {

MultiSessionResult RunMultiSessionExperiment(
    ResourcePool& pool, const MultiSessionParams& params) {
  P2P_CHECK_MSG(params.session_count * params.members_per_session <=
                    pool.size(),
                "not enough hosts for non-overlapping member sets");
  P2P_CHECK_MSG(pool.registry().TotalUsed() == 0,
                "registry must be empty at experiment start");

  util::Rng rng(params.seed);

  // Non-overlapping member sets: shuffle all hosts, carve consecutive
  // blocks of `members_per_session`.
  std::vector<std::size_t> hosts(pool.size());
  std::iota(hosts.begin(), hosts.end(), 0);
  rng.Shuffle(hosts);

  std::vector<alm::SessionSpec> specs;
  specs.reserve(params.session_count);
  for (std::size_t s = 0; s < params.session_count; ++s) {
    alm::SessionSpec spec;
    spec.id = static_cast<alm::SessionId>(s + 1);
    spec.priority = static_cast<int>(
        rng.UniformInt(somo::kHighestPriority, somo::kLowestPriority));
    const std::size_t base = s * params.members_per_session;
    spec.root = hosts[base];
    for (std::size_t k = 1; k < params.members_per_session; ++k)
      spec.members.push_back(hosts[base + k]);
    specs.push_back(std::move(spec));
  }

  MultiSessionResult result;

  // Per-session bounds, computed against an uncontended pool. Sessions are
  // independent here (each plans against read-only pool state), so the work
  // fans out across params.workers when provided. Per-session results land
  // in pre-sized slots and are folded in spec order afterwards, so the
  // accumulated statistics match a sequential run exactly.
  struct BoundsRow {
    double lb_improvement = 0.0;
    double ub_improvement = 0.0;
  };
  std::vector<BoundsRow> bounds(specs.size());
  // Registry sharding: each session's planning instruments its own shard,
  // merged into params.metrics in spec order after the fan-out. Worker
  // threads never touch the shared registry, and the sequential path runs
  // the identical shard-then-merge code, so `--jobs N` snapshots are
  // byte-identical to sequential ones.
  std::vector<std::unique_ptr<obs::MetricsRegistry>> shards;
  if (params.metrics != nullptr) {
    shards.resize(specs.size());
    for (auto& shard : shards) shard = std::make_unique<obs::MetricsRegistry>();
  }
  const auto compute_bounds = [&](std::size_t s) {
    const auto& spec = specs[s];
    alm::PlanInput in;
    in.degree_bounds = pool.degree_bounds();
    in.root = spec.root;
    in.members = spec.members;
    in.true_latency = pool.TrueLatencyFn();
    in.amcast = params.options.amcast;
    in.adjust = params.options.adjust;

    // Bounds always come from the tree-planner corners of the option cube
    // (the paper's Figure 8 frame), whatever planner the market phase runs.
    alm::TreePlanner base(alm::OptionsForStrategy(alm::Strategy::kAmcast));
    const double base_height = base.Plan(in).height_true;

    alm::TreePlanner lower(
        alm::OptionsForStrategy(alm::Strategy::kAmcastAdjust));
    const double lb_height = lower.Plan(in).height_true;
    bounds[s].lb_improvement = alm::Improvement(base_height, lb_height);
    if (!shards.empty()) {
      obs::MetricsRegistry& shard = *shards[s];
      shard.counter("pool.bounds.sessions").Inc();
      shard.histogram("pool.bounds.base_height_ms").Add(base_height);
      shard.histogram("pool.bounds.lb_improvement")
          .Add(bounds[s].lb_improvement);
    }

    if (params.compute_upper_bound) {
      alm::PlanInput solo = in;
      std::vector<alm::ParticipantId> all;
      spec.AppendAllMembers(all);
      std::vector<char> member(pool.size(), 0);
      for (const auto m : all) member[m] = 1;
      for (std::size_t v = 0; v < pool.size(); ++v) {
        if (!member[v] &&
            pool.degree_bound(v) >= params.options.helper_min_available)
          solo.helper_candidates.push_back(v);
      }
      solo.estimated_latency = pool.EstimatedLatencyFn();
      alm::TreePlanner upper(
          alm::OptionsForStrategy(alm::Strategy::kLeafsetAdjust));
      const double ub_height = upper.Plan(solo).height_true;
      bounds[s].ub_improvement = alm::Improvement(base_height, ub_height);
      if (!shards.empty()) {
        obs::MetricsRegistry& shard = *shards[s];
        shard.counter("pool.bounds.helper_candidates")
            .Inc(static_cast<double>(solo.helper_candidates.size()));
        shard.histogram("pool.bounds.ub_improvement")
            .Add(bounds[s].ub_improvement);
      }
    }
  };
  {
    // Wall-clock profile of the bounds fan-out, measured from this (single)
    // calling thread — safe regardless of params.workers.
    obs::ScopeTimer timer(params.metrics != nullptr
                              ? &params.metrics->profile("pool.bounds_ms")
                              : nullptr);
    if (params.workers != nullptr && specs.size() > 1) {
      params.workers->ParallelFor(specs.size(), compute_bounds);
    } else {
      for (std::size_t s = 0; s < specs.size(); ++s) compute_bounds(s);
    }
  }
  // Merge order is spec order, on this (single) thread: float sums — and
  // therefore snapshot bytes — cannot depend on worker interleaving.
  for (const auto& shard : shards) params.metrics->MergeFrom(*shard);
  for (const BoundsRow& row : bounds) {
    result.lower_bound_improvement.Add(row.lb_improvement);
    if (params.compute_upper_bound)
      result.upper_bound_improvement.Add(row.ub_improvement);
  }

  // Market phase: sessions arrive in random order, then the periodic
  // rescheduling sweeps let the market settle.
  MarketScheduler market(pool, params.options);
  {
    obs::ScopeTimer timer(params.metrics != nullptr
                              ? &params.metrics->profile("pool.market_ms")
                              : nullptr);
    std::vector<std::size_t> arrival(specs.size());
    std::iota(arrival.begin(), arrival.end(), 0);
    rng.Shuffle(arrival);
    for (const std::size_t i : arrival) market.AddSession(specs[i]);
    for (std::size_t sweep = 0; sweep < params.rescheduling_sweeps; ++sweep)
      market.ReschedulingSweep(rng);
  }

  // Measure the settled state.
  for (const auto& spec : specs) {
    TaskManager& tm = market.session(spec.id);
    P2P_CHECK(tm.scheduled());
    auto& cls = result.by_priority[static_cast<std::size_t>(spec.priority)];
    cls.improvement.Add(tm.CurrentImprovement());
    cls.helpers_used.Add(static_cast<double>(tm.current_helpers()));
    ++cls.sessions;
    if (params.metrics != nullptr) {
      params.metrics->counter("pool.sessions.planned").Inc();
      params.metrics->counter("pool.helpers.recruited")
          .Inc(static_cast<double>(tm.current_helpers()));
      params.metrics->histogram("pool.session.height_ms")
          .Add(tm.current_height());
      params.metrics->histogram("pool.session.improvement")
          .Add(tm.CurrentImprovement());
    }
  }
  result.reschedules = market.total_reschedules();
  result.preemptions = market.total_preemptions();
  result.pool_utilisation =
      static_cast<double>(pool.registry().TotalUsed()) /
      static_cast<double>(pool.registry().TotalCapacity());
  if (params.metrics != nullptr) {
    params.metrics->counter("pool.reschedules")
        .Inc(static_cast<double>(result.reschedules));
    params.metrics->counter("pool.preemptions")
        .Inc(static_cast<double>(result.preemptions));
    params.metrics->gauge("pool.utilisation").Set(result.pool_utilisation);
  }

  // Drain the registry so the pool can host another experiment.
  for (const alm::SessionId id : market.session_ids())
    market.RemoveSession(id);
  P2P_CHECK(pool.registry().TotalUsed() == 0);

  return result;
}

}  // namespace p2p::pool
