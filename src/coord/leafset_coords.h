// Leafset-based network coordinates (paper §4.1): the landmark-free variant
// where each DHT node measures delays to its leafset members over ordinary
// heartbeats, learns its neighbours' current coordinates from the same
// messages, and refines its own coordinate with downhill simplex minimising
//   E(x) = Σ_i |d_p(i) − d_m(i)|
// the paper's exact L1 objective.
//
// Two drive modes:
//  * RunRounds(n): synchronous sweeps (used by the Figure-4 harness, where
//    the protocol has converged and only the embedding quality matters);
//  * AttachTo(heartbeat): event-driven updates from real simulated
//    heartbeat deliveries (used by integration tests; converges to the
//    same embedding).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "coord/nelder_mead.h"
#include "coord/vec.h"
#include "dht/heartbeat.h"
#include "dht/ring.h"
#include "util/rng.h"

namespace p2p::coord {

// Local-fit objective for the per-node simplex update.
//  * kAbsoluteL1 is the formula printed in the paper: E(x)=Σ|dp−dm|. It
//    fits long (inter-domain) links well but leaves large *relative* error
//    on short pairs.
//  * kSquaredRelative normalises each term by the measured delay, matching
//    the objective GNP itself optimises; this reproduces the accuracy the
//    paper reports for the leafset variant (Figure 4: leafset-32 ≈ GNP-16)
//    and is the default. See DESIGN.md §4 for the rationale.
enum class CoordObjective {
  kAbsoluteL1,
  kRelativeL1,
  kSquaredRelative,
};

struct LeafsetCoordOptions {
  std::size_t dimensions = 5;
  double init_range = 400.0;
  CoordObjective objective = CoordObjective::kSquaredRelative;
  // Multiplicative measurement noise: each measured delay is scaled by a
  // value uniform in [1-noise, 1+noise] (0 = perfect packet timestamps).
  double measurement_noise = 0.0;
  // Damping of each local update: the node moves this fraction of the way
  // from its current coordinate to the locally-optimal one. Full jumps
  // (1.0) against simultaneously-moving neighbours fold the embedding;
  // partial steps let a globally consistent solution emerge (the same
  // reason Vivaldi-style systems move in small increments).
  double damping = 0.5;
  // PIC-style incremental bootstrap (the paper builds on PIC/Lighthouse):
  // before the first refinement round, nodes are placed one at a time in
  // random order, each fitting only against already-placed leafset
  // members. Pure simultaneous best-response from random positions folds
  // the embedding (locally consistent, globally wrong); the incremental
  // pass gives the refinement rounds a globally consistent scaffold.
  bool incremental_bootstrap = true;
  // Event-driven mode: re-optimise after this many fresh observations.
  std::size_t observations_per_update = 8;
  NelderMeadOptions nm;
};

class LeafsetCoordSystem {
 public:
  // The ring must have a latency oracle (it provides the "measured" delays).
  LeafsetCoordSystem(const dht::Ring& ring, LeafsetCoordOptions options,
                     util::Rng& rng);

  // Synchronous mode: `rounds` full sweeps; within a sweep nodes update in
  // random order, each seeing neighbours' latest coordinates (Gauss–Seidel).
  void RunRounds(std::size_t rounds);

  // Event-driven mode: subscribe to heartbeat deliveries.
  void AttachTo(dht::HeartbeatProtocol& heartbeat);

  // PIC-style incremental placement pass (run automatically before the
  // first RunRounds when options.incremental_bootstrap is set).
  void Bootstrap();

  const Vec& coord(dht::NodeIndex n) const { return coords_.at(n); }
  // Override a node's coordinate (testing / warm-start).
  void SetCoord(dht::NodeIndex n, Vec c) { coords_.at(n) = std::move(c); }
  double Predict(dht::NodeIndex a, dht::NodeIndex b) const {
    return Distance(coords_.at(a), coords_.at(b));
  }
  double Measured(dht::NodeIndex a, dht::NodeIndex b) const;

  std::size_t updates_performed() const { return updates_; }

 private:
  double ErrorTerm(double predicted, double measured) const;
  // One local refinement of node n against (member, measured delay) pairs.
  void OptimizeNode(dht::NodeIndex n,
                    const std::vector<std::pair<dht::NodeIndex, double>>&
                        measurements);
  void OnHeartbeat(dht::NodeIndex from, dht::NodeIndex to, sim::Time send_t,
                   sim::Time recv_t);

  const dht::Ring& ring_;
  LeafsetCoordOptions options_;
  util::Rng& rng_;
  std::vector<Vec> coords_;
  std::size_t updates_ = 0;
  bool bootstrapped_ = false;

  // Event-driven state: per node, the latest (delay, sender coordinate)
  // observation per leafset member, plus a counter of fresh observations.
  struct Observation {
    double delay_ms;
    Vec sender_coord;
  };
  std::vector<std::unordered_map<dht::NodeIndex, Observation>> inbox_;
  std::vector<std::size_t> fresh_;
};

}  // namespace p2p::coord
