#include "coord/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace p2p::coord {

NelderMeadResult Minimize(const std::function<double(const Vec&)>& f, Vec& x,
                          const NelderMeadOptions& opt) {
  const std::size_t d = x.size();
  P2P_CHECK_MSG(d > 0, "empty start point");

  // Initial simplex: start point plus one per-axis perturbed vertex.
  std::vector<Vec> pts(d + 1, x);
  for (std::size_t i = 0; i < d; ++i) pts[i + 1][i] += opt.initial_step;
  std::vector<double> vals(d + 1);
  for (std::size_t i = 0; i <= d; ++i) vals[i] = f(pts[i]);

  NelderMeadResult result;
  auto order = [&] {
    std::vector<std::size_t> idx(d + 1);
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return vals[a] < vals[b]; });
    return idx;
  };

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    const auto idx = order();
    const std::size_t best = idx[0];
    const std::size_t worst = idx[d];
    const std::size_t second_worst = idx[d - 1];

    if (std::abs(vals[worst] - vals[best]) <= opt.f_tolerance) {
      result.converged = true;
      result.iterations = iter;
      break;
    }

    // Centroid of all but the worst vertex.
    Vec centroid(d, 0.0);
    for (std::size_t i = 0; i <= d; ++i) {
      if (i == worst) continue;
      for (std::size_t k = 0; k < d; ++k) centroid[k] += pts[i][k];
    }
    for (double& c : centroid) c /= static_cast<double>(d);

    // Reflection.
    const Vec xr = Lerp(pts[worst], centroid, 1.0 + opt.reflection);
    const double fr = f(xr);
    if (fr < vals[best]) {
      // Expansion.
      const Vec xe = Lerp(pts[worst], centroid, 1.0 + opt.expansion);
      const double fe = f(xe);
      if (fe < fr) {
        pts[worst] = xe;
        vals[worst] = fe;
      } else {
        pts[worst] = xr;
        vals[worst] = fr;
      }
    } else if (fr < vals[second_worst]) {
      pts[worst] = xr;
      vals[worst] = fr;
    } else {
      // Contraction (outside if the reflected point improved on the worst,
      // inside otherwise).
      const bool outside = fr < vals[worst];
      const Vec base = outside ? xr : pts[worst];
      const Vec xc = Lerp(base, centroid, 1.0 - opt.contraction);
      const double fc = f(xc);
      if (fc < std::min(fr, vals[worst])) {
        pts[worst] = xc;
        vals[worst] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= d; ++i) {
          if (i == best) continue;
          pts[i] = Lerp(pts[best], pts[i], opt.shrink);
          vals[i] = f(pts[i]);
        }
      }
    }
    result.iterations = iter + 1;
  }

  const auto idx = order();
  x = pts[idx[0]];
  result.best_value = vals[idx[0]];
  return result;
}

}  // namespace p2p::coord
