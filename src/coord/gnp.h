// GNP (Global Network Positioning) baseline, per Ng & Zhang [12]: a set of
// well-distributed landmark nodes solve their own coordinates against
// measured inter-landmark latencies, then every ordinary host solves its
// coordinates against the landmarks. This is the infrastructure-dependent
// baseline that the paper's leafset-based variant (leafset_coords.h)
// removes the landmarks from.
#pragma once

#include <cstddef>
#include <vector>

#include "coord/nelder_mead.h"
#include "coord/vec.h"
#include "net/latency_oracle.h"
#include "util/rng.h"

namespace p2p::coord {

struct GnpOptions {
  std::size_t dimensions = 5;
  std::size_t landmark_count = 16;
  // Landmark coordinates are solved by coordinate descent: this many full
  // sweeps of per-landmark downhill-simplex refinement.
  std::size_t landmark_rounds = 6;
  // Greedy max-min landmark selection (true) or uniform random (false).
  bool greedy_landmarks = true;
  // Initial coordinates are drawn uniformly from [0, init_range)^d.
  double init_range = 400.0;
  NelderMeadOptions nm;
};

class GnpSystem {
 public:
  // `hosts[i]` is the end-system backing logical index i; all latency
  // "measurements" come from the oracle.
  GnpSystem(const net::LatencyOracle& oracle, std::vector<net::HostIdx> hosts,
            GnpOptions options, util::Rng& rng);

  // Select landmarks, solve their coordinates, then solve every host.
  void Solve();

  std::size_t host_count() const { return hosts_.size(); }
  const std::vector<std::size_t>& landmarks() const { return landmarks_; }
  const Vec& coord(std::size_t i) const { return coords_.at(i); }

  // Predicted latency between logical hosts a and b.
  double Predict(std::size_t a, std::size_t b) const {
    return Distance(coords_.at(a), coords_.at(b));
  }
  // True (oracle) latency between logical hosts a and b.
  double Measured(std::size_t a, std::size_t b) const {
    return oracle_.Latency(hosts_.at(a), hosts_.at(b));
  }

 private:
  void SelectLandmarks(util::Rng& rng);
  void SolveLandmarks();
  void SolveHost(std::size_t i);

  const net::LatencyOracle& oracle_;
  std::vector<net::HostIdx> hosts_;
  GnpOptions options_;
  std::vector<std::size_t> landmarks_;  // logical indices
  std::vector<Vec> coords_;
};

// |predicted − measured| / measured; measured must be > 0.
double RelativeError(double predicted, double measured);

}  // namespace p2p::coord
