#include "coord/leafset_coords.h"

#include <algorithm>

#include "util/check.h"

namespace p2p::coord {

LeafsetCoordSystem::LeafsetCoordSystem(const dht::Ring& ring,
                                       LeafsetCoordOptions options,
                                       util::Rng& rng)
    : ring_(ring), options_(options), rng_(rng) {
  P2P_CHECK(options_.dimensions > 0);
  P2P_CHECK(options_.measurement_noise >= 0.0 &&
            options_.measurement_noise < 1.0);
  P2P_CHECK_MSG(ring_.oracle() != nullptr,
                "leafset coordinates need a latency oracle");
  coords_.resize(ring_.size());
  for (auto& c : coords_) {
    c.resize(options_.dimensions);
    for (double& v : c) v = rng_.Uniform(0.0, options_.init_range);
  }
  inbox_.resize(ring_.size());
  fresh_.assign(ring_.size(), 0);
}

double LeafsetCoordSystem::Measured(dht::NodeIndex a,
                                    dht::NodeIndex b) const {
  return ring_.LatencyBetween(a, b);
}

void LeafsetCoordSystem::OptimizeNode(
    dht::NodeIndex n,
    const std::vector<std::pair<dht::NodeIndex, double>>& measurements) {
  if (measurements.empty()) return;
  // Snapshot neighbour coordinates: in the real protocol these arrive in
  // heartbeat payloads, so the sender's coordinate is whatever it last
  // advertised, not a live reference.
  std::vector<Vec> neighbour_coords;
  neighbour_coords.reserve(measurements.size());
  for (const auto& [m, delay] : measurements) {
    (void)delay;
    neighbour_coords.push_back(coords_[m]);
  }
  auto objective = [&](const Vec& x) {
    double err = 0.0;
    for (std::size_t i = 0; i < measurements.size(); ++i) {
      const double pred = Distance(x, neighbour_coords[i]);
      err += ErrorTerm(pred, measurements[i].second);
    }
    return err;
  };
  Vec x = coords_[n];
  Minimize(objective, x, options_.nm);
  coords_[n] = Lerp(coords_[n], x, options_.damping);
  ++updates_;
}

double LeafsetCoordSystem::ErrorTerm(double predicted, double measured) const {
  switch (options_.objective) {
    case CoordObjective::kAbsoluteL1:
      return std::abs(predicted - measured);
    case CoordObjective::kRelativeL1:
      return measured > 0.0 ? std::abs(predicted - measured) / measured : 0.0;
    case CoordObjective::kSquaredRelative: {
      if (measured <= 0.0) return 0.0;
      const double rel = (predicted - measured) / measured;
      return rel * rel;
    }
  }
  return 0.0;
}

void LeafsetCoordSystem::Bootstrap() {
  // Replays the incremental growth of a real deployment: nodes join one by
  // one (random order); each fits — undamped, it has no position yet —
  // against the leafset it *would have had at join time*, i.e. the
  // ring-closest already-placed nodes. While the ring is small, that
  // leafset spans every placed node, so the first joiners form a mutually
  // consistent scaffold (GNP's landmark solve arises as a special case);
  // every later joiner is constrained by a full, consistent leafset.
  bootstrapped_ = true;
  std::vector<dht::NodeIndex> order = ring_.SortedAlive();
  rng_.Shuffle(order);

  // Placed nodes, sorted by ring id.
  std::vector<dht::LeafsetEntry> placed;
  placed.reserve(order.size());
  const std::size_t per_side = ring_.per_side();

  for (const dht::NodeIndex n : order) {
    const dht::NodeId id = ring_.node(n).id();
    if (!placed.empty()) {
      // The leafset this node would have on joining the placed-set ring:
      // `per_side` nearest on each side of its insertion point.
      const auto it = std::lower_bound(
          placed.begin(), placed.end(), id,
          [](const dht::LeafsetEntry& e, dht::NodeId v) { return e.id < v; });
      const std::size_t pos = static_cast<std::size_t>(it - placed.begin());
      const std::size_t m = placed.size();
      const std::size_t take = std::min(per_side, m);
      std::vector<std::pair<dht::NodeIndex, double>> meas;
      std::vector<char> used(m, 0);
      for (std::size_t k = 0; k < take; ++k) {
        const std::size_t succ = (pos + k) % m;
        const std::size_t pred = (pos + m - 1 - k) % m;
        for (const std::size_t p : {succ, pred}) {
          if (used[p]) continue;
          used[p] = 1;
          double delay = Measured(n, placed[p].node);
          if (options_.measurement_noise > 0.0) {
            delay *= rng_.Uniform(1.0 - options_.measurement_noise,
                                  1.0 + options_.measurement_noise);
          }
          meas.emplace_back(placed[p].node, delay);
        }
      }
      auto objective = [&](const Vec& x) {
        double err = 0.0;
        for (const auto& [peer, d] : meas)
          err += ErrorTerm(Distance(x, coords_[peer]), d);
        return err;
      };
      Vec x = coords_[n];
      Minimize(objective, x, options_.nm);
      coords_[n] = std::move(x);
      ++updates_;
      placed.insert(placed.begin() + static_cast<std::ptrdiff_t>(pos),
                    {id, n});
    } else {
      placed.push_back({id, n});
    }
  }
}

void LeafsetCoordSystem::RunRounds(std::size_t rounds) {
  if (options_.incremental_bootstrap && !bootstrapped_) Bootstrap();
  std::vector<dht::NodeIndex> order = ring_.SortedAlive();
  for (std::size_t r = 0; r < rounds; ++r) {
    rng_.Shuffle(order);
    for (const dht::NodeIndex n : order) {
      std::vector<std::pair<dht::NodeIndex, double>> meas;
      for (const auto& e : ring_.node(n).leafset().Members()) {
        if (!ring_.node(e.node).alive()) continue;
        double delay = Measured(n, e.node);
        if (options_.measurement_noise > 0.0) {
          delay *= rng_.Uniform(1.0 - options_.measurement_noise,
                                1.0 + options_.measurement_noise);
        }
        meas.emplace_back(e.node, delay);
      }
      OptimizeNode(n, meas);
    }
  }
}

void LeafsetCoordSystem::AttachTo(dht::HeartbeatProtocol& heartbeat) {
  heartbeat.AddObserver(
      [this](dht::NodeIndex from, dht::NodeIndex to, sim::Time send_t,
             sim::Time recv_t) { OnHeartbeat(from, to, send_t, recv_t); });
}

void LeafsetCoordSystem::OnHeartbeat(dht::NodeIndex from, dht::NodeIndex to,
                                     sim::Time send_t, sim::Time recv_t) {
  if (inbox_.size() <= std::max(from, to)) {
    inbox_.resize(ring_.size());
    fresh_.resize(ring_.size(), 0);
    coords_.resize(ring_.size(), Vec(options_.dimensions, 0.0));
  }
  double delay = recv_t - send_t;  // one-way delay from message timestamps
  P2P_DCHECK(delay >= 0.0);
  if (options_.measurement_noise > 0.0) {
    delay *= rng_.Uniform(1.0 - options_.measurement_noise,
                          1.0 + options_.measurement_noise);
  }
  inbox_[to][from] = Observation{delay, coords_[from]};
  if (++fresh_[to] < options_.observations_per_update) return;
  fresh_[to] = 0;

  std::vector<std::pair<dht::NodeIndex, double>> meas;
  std::vector<Vec> sender_coords;
  meas.reserve(inbox_[to].size());
  for (const auto& [m, obs] : inbox_[to]) {
    meas.emplace_back(m, obs.delay_ms);
    sender_coords.push_back(obs.sender_coord);
  }
  // Optimise against the *advertised* coordinates captured in the inbox.
  auto objective = [&](const Vec& x) {
    double err = 0.0;
    for (std::size_t i = 0; i < meas.size(); ++i)
      err += ErrorTerm(Distance(x, sender_coords[i]), meas[i].second);
    return err;
  };
  Vec x = coords_[to];
  Minimize(objective, x, options_.nm);
  coords_[to] = Lerp(coords_[to], x, options_.damping);
  ++updates_;
}

}  // namespace p2p::coord
