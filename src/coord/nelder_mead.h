// Downhill-simplex (Nelder–Mead) minimiser — the optimiser the paper's §4.1
// prescribes for solving node coordinates ("Node x updates its own
// coordinates by executing downhill simplex algorithm").
#pragma once

#include <functional>

#include "coord/vec.h"

namespace p2p::coord {

struct NelderMeadOptions {
  std::size_t max_iterations = 400;
  // Convergence: stop when the simplex's value spread falls below this.
  double f_tolerance = 1e-8;
  // Initial simplex edge length (per-axis perturbation of the start point).
  double initial_step = 50.0;
  // Standard coefficients.
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

struct NelderMeadResult {
  double best_value = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

// Minimise `f` starting from `x` (modified in place to the best point).
NelderMeadResult Minimize(const std::function<double(const Vec&)>& f, Vec& x,
                          const NelderMeadOptions& options = {});

}  // namespace p2p::coord
