#include "coord/gnp.h"

#include <algorithm>

#include "util/check.h"

namespace p2p::coord {

double RelativeError(double predicted, double measured) {
  P2P_CHECK_MSG(measured > 0.0, "measured latency must be positive");
  return std::abs(predicted - measured) / measured;
}

GnpSystem::GnpSystem(const net::LatencyOracle& oracle,
                     std::vector<net::HostIdx> hosts, GnpOptions options,
                     util::Rng& rng)
    : oracle_(oracle), hosts_(std::move(hosts)), options_(options) {
  P2P_CHECK(options_.dimensions > 0);
  P2P_CHECK_MSG(options_.landmark_count >= options_.dimensions + 1,
                "need at least d+1 landmarks to fix a d-dim embedding");
  P2P_CHECK(hosts_.size() >= options_.landmark_count);
  coords_.resize(hosts_.size());
  for (auto& c : coords_) {
    c.resize(options_.dimensions);
    for (double& v : c) v = rng.Uniform(0.0, options_.init_range);
  }
  SelectLandmarks(rng);
}

void GnpSystem::SelectLandmarks(util::Rng& rng) {
  const std::size_t k = options_.landmark_count;
  if (!options_.greedy_landmarks) {
    const auto idx = rng.SampleIndices(hosts_.size(), k);
    landmarks_.assign(idx.begin(), idx.end());
    return;
  }
  // Greedy max-min: start from a random host, repeatedly add the host whose
  // minimum latency to the chosen set is largest ("well-distributed"
  // landmarks, as GNP prescribes).
  landmarks_.clear();
  landmarks_.push_back(rng.NextBounded(hosts_.size()));
  std::vector<double> min_dist(hosts_.size(), net::kInfLatency);
  while (landmarks_.size() < k) {
    const std::size_t last = landmarks_.back();
    std::size_t best = hosts_.size();
    double best_dist = -1.0;
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      if (std::find(landmarks_.begin(), landmarks_.end(), i) !=
          landmarks_.end())
        continue;
      min_dist[i] = std::min(min_dist[i], Measured(i, last));
      if (min_dist[i] > best_dist) {
        best_dist = min_dist[i];
        best = i;
      }
    }
    P2P_CHECK(best < hosts_.size());
    landmarks_.push_back(best);
  }
}

void GnpSystem::SolveLandmarks() {
  // Coordinate descent: sweep the landmarks, each minimising the summed
  // squared relative error against measured inter-landmark latencies while
  // the others stay fixed. (The original GNP solves the joint k×d problem
  // with one big simplex; per-landmark sweeps reach the same fixed point
  // far more robustly at k=16..32.)
  for (std::size_t round = 0; round < options_.landmark_rounds; ++round) {
    for (const std::size_t li : landmarks_) {
      auto objective = [&](const Vec& x) {
        double err = 0.0;
        for (const std::size_t lj : landmarks_) {
          if (lj == li) continue;
          const double meas = Measured(li, lj);
          const double pred = Distance(x, coords_[lj]);
          const double rel = (pred - meas) / meas;
          err += rel * rel;
        }
        return err;
      };
      Vec x = coords_[li];
      Minimize(objective, x, options_.nm);
      coords_[li] = std::move(x);
    }
  }
}

void GnpSystem::SolveHost(std::size_t i) {
  if (std::find(landmarks_.begin(), landmarks_.end(), i) != landmarks_.end())
    return;  // landmark coordinates are already solved
  auto objective = [&](const Vec& x) {
    double err = 0.0;
    for (const std::size_t lj : landmarks_) {
      const double meas = Measured(i, lj);
      const double pred = Distance(x, coords_[lj]);
      const double rel = (pred - meas) / meas;
      err += rel * rel;
    }
    return err;
  };
  Vec x = coords_[i];
  Minimize(objective, x, options_.nm);
  coords_[i] = std::move(x);
}

void GnpSystem::Solve() {
  SolveLandmarks();
  for (std::size_t i = 0; i < hosts_.size(); ++i) SolveHost(i);
}

}  // namespace p2p::coord
