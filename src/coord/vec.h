// Small dense-vector helpers for d-dimensional network coordinates.
#pragma once

#include <cmath>
#include <vector>

#include "util/check.h"

namespace p2p::coord {

using Vec = std::vector<double>;

inline double SquaredDistance(const Vec& a, const Vec& b) {
  P2P_DCHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

inline double Distance(const Vec& a, const Vec& b) {
  return std::sqrt(SquaredDistance(a, b));
}

inline Vec Add(const Vec& a, const Vec& b) {
  P2P_DCHECK(a.size() == b.size());
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

inline Vec Sub(const Vec& a, const Vec& b) {
  P2P_DCHECK(a.size() == b.size());
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

inline Vec Scale(const Vec& a, double s) {
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] * s;
  return r;
}

// a + s * (b - a)
inline Vec Lerp(const Vec& a, const Vec& b, double s) {
  P2P_DCHECK(a.size() == b.size());
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + s * (b[i] - a[i]);
  return r;
}

}  // namespace p2p::coord
