#include "net/latency_oracle.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "obs/scope_timer.h"

namespace p2p::net {
namespace {

obs::Histogram* ProfileOrNull(obs::MetricsRegistry* metrics,
                              const char* name) {
  return metrics == nullptr ? nullptr : &metrics->profile(name);
}

}  // namespace

LatencyOracle::LatencyOracle(const TransitStubTopology& topo,
                             const OracleOptions& opts)
    : kind_(opts.kind),
      use_float_(opts.precision == OraclePrecision::kF32),
      router_count_(topo.router_count()),
      host_router_(topo.host_router),
      host_last_hop_(topo.host_last_hop_ms) {
  flat_.use_float = use_float_;
  core_.use_float = use_float_;
  intra_.use_float = use_float_;
  const obs::ScopeTimer total(ProfileOrNull(opts.metrics, "net.oracle.build_ms"));
  if (kind_ == OracleKind::kFlat) {
    BuildFlat(topo, opts);
  } else {
    BuildHierarchical(topo, opts);
  }
  RecordBuildMetrics(opts.metrics);
}

void LatencyOracle::BuildFlat(const TransitStubTopology& topo,
                              const OracleOptions& opts) {
  const obs::ScopeTimer timer(
      ProfileOrNull(opts.metrics, "net.oracle.phase.flat_ms"));
  flat_.Assign(router_count_ * (router_count_ + 1) / 2, kInfLatency);
  // Source r writes only the cells (r, c) with c >= r, so under a parallel
  // fill every packed cell has exactly one writer and no synchronisation is
  // needed (the old full-matrix layout had the same property per row).
  auto run_source = [&](std::size_t r) {
    const std::vector<double> d = topo.routers.Dijkstra(r);
    for (std::size_t c = r; c < router_count_; ++c)
      flat_.Set(TriIndex(r, c, router_count_), d[c]);
  };
  if (opts.pool != nullptr) {
    opts.pool->ParallelFor(router_count_, run_source);
  } else {
    for (std::size_t r = 0; r < router_count_; ++r) run_source(r);
  }
  // The generator guarantees connectivity; every distance must be finite.
  // Pure read-only scan — chunks freely across the pool (ParallelForRange
  // rethrows the first failing chunk's CheckError).
  auto check_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      P2P_CHECK(flat_.Get(i) < kInfLatency);
  };
  if (opts.pool != nullptr) {
    opts.pool->ParallelForRange(flat_.size(), 1 << 16, check_range);
  } else {
    check_range(0, flat_.size());
  }
#ifndef NDEBUG
  // The packed layout assumes Dijkstra distances are symmetric (they are:
  // the router graph is undirected). Spot-check a few sources in debug
  // builds by recomputing their full row and comparing both triangles.
  const std::size_t step = std::max<std::size_t>(1, router_count_ / 4);
  const double tol = use_float_ ? 1e-3 : 1e-9;
  for (std::size_t r = 0; r < router_count_; r += step) {
    const std::vector<double> d = topo.routers.Dijkstra(r);
    for (std::size_t c = 0; c < router_count_; ++c)
      P2P_DCHECK(std::abs(RouterDistance(r, c) - d[c]) <= tol);
  }
#endif
}

void LatencyOracle::BuildHierarchical(const TransitStubTopology& topo,
                                      const OracleOptions& opts) {
  // ---- Phase 0: classify routers — stub-domain membership and the core
  // set (transit routers plus stub gateways: stub routers with at least one
  // link leaving their domain). Every inter-domain path must enter and
  // leave a stub domain through a gateway, which is what makes the
  // decomposition below exact (docs/NET.md).
  core_index_.assign(router_count_, kNone);
  stub_domain_.assign(router_count_, kNone);
  local_of_.assign(router_count_, kNone);
  std::vector<std::vector<NodeIdx>> domain_members;
  {
    bool any_stub = false;
    std::size_t max_domain = 0;
    for (NodeIdx r = 0; r < router_count_; ++r) {
      if (topo.is_transit[r]) continue;
      any_stub = true;
      max_domain = std::max(max_domain, topo.domain_of[r]);
    }
    domain_count_ = any_stub ? max_domain + 1 : 0;
    domain_members.resize(domain_count_);
    for (NodeIdx r = 0; r < router_count_; ++r) {
      if (topo.is_transit[r]) continue;
      const std::size_t d = topo.domain_of[r];
      stub_domain_[r] = static_cast<std::uint32_t>(d);
      local_of_[r] = static_cast<std::uint32_t>(domain_members[d].size());
      domain_members[d].push_back(r);
    }
  }
  std::vector<std::vector<NodeIdx>> domain_gateways(domain_count_);
  core_count_ = 0;
  gateway_count_ = 0;
  for (NodeIdx r = 0; r < router_count_; ++r) {
    bool in_core = topo.is_transit[r];
    if (!in_core) {
      for (const Graph::Neighbor& nb : topo.routers.Neighbors(r)) {
        if (topo.is_transit[nb.to] || topo.domain_of[nb.to] != topo.domain_of[r]) {
          in_core = true;
          break;
        }
      }
      if (in_core) {
        domain_gateways[topo.domain_of[r]].push_back(r);
        ++gateway_count_;
      }
    }
    if (in_core) core_index_[r] = static_cast<std::uint32_t>(core_count_++);
  }
  // A connected topology cannot strand a stub domain without a gateway.
  for (std::size_t d = 0; d < domain_count_; ++d)
    P2P_CHECK_MSG(!domain_gateways[d].empty(), "stub domain has no gateway");

  // ---- Phase 1: per-stub-domain all-pairs over the domain subgraphs,
  // restricted to intra-domain links. Domains are independent, so the fill
  // parallelises across domains with disjoint output blocks.
  {
    const obs::ScopeTimer timer(
        ProfileOrNull(opts.metrics, "net.oracle.phase.intra_ms"));
    domain_size_.resize(domain_count_);
    intra_offset_.assign(domain_count_ + 1, 0);
    for (std::size_t d = 0; d < domain_count_; ++d) {
      const std::size_t m = domain_members[d].size();
      domain_size_[d] = static_cast<std::uint32_t>(m);
      intra_offset_[d + 1] = intra_offset_[d] + m * (m + 1) / 2;
    }
    intra_.Assign(intra_offset_[domain_count_], kInfLatency);
    auto run_domain = [&](std::size_t d) {
      const std::vector<NodeIdx>& members = domain_members[d];
      const std::size_t m = members.size();
      Graph local(m);
      for (std::size_t i = 0; i < m; ++i) {
        for (const Graph::Neighbor& nb : topo.routers.Neighbors(members[i])) {
          if (topo.is_transit[nb.to] || topo.domain_of[nb.to] != d) continue;
          const std::uint32_t j = local_of_[nb.to];
          if (j > i) local.AddEdge(i, j, nb.weight);
        }
      }
      const std::size_t base = intra_offset_[d];
      for (std::size_t i = 0; i < m; ++i) {
        const std::vector<double> dist = local.Dijkstra(i);
        for (std::size_t j = i; j < m; ++j) {
          P2P_CHECK_MSG(dist[j] < kInfLatency, "stub domain disconnected");
          intra_.Set(base + TriIndex(i, j, m), dist[j]);
        }
      }
    };
    if (opts.pool != nullptr) {
      opts.pool->ParallelFor(domain_count_, run_domain);
    } else {
      for (std::size_t d = 0; d < domain_count_; ++d) run_domain(d);
    }
  }

  // ---- Phase 2: dense all-pairs over the core graph. Its nodes are the
  // core routers; its edges are (a) every original link whose endpoints are
  // both core and (b) one synthetic edge per same-domain gateway pair,
  // weighted by their intra-domain-restricted distance — replacing the stub
  // interiors those paths may traverse.
  {
    const obs::ScopeTimer timer(
        ProfileOrNull(opts.metrics, "net.oracle.phase.core_ms"));
    Graph core_graph(core_count_);
    for (NodeIdx r = 0; r < router_count_; ++r) {
      const std::uint32_t cr = core_index_[r];
      if (cr == kNone) continue;
      for (const Graph::Neighbor& nb : topo.routers.Neighbors(r)) {
        const std::uint32_t cn = core_index_[nb.to];
        if (cn != kNone && nb.to > r) core_graph.AddEdge(cr, cn, nb.weight);
      }
    }
    for (std::size_t d = 0; d < domain_count_; ++d) {
      const std::vector<NodeIdx>& gws = domain_gateways[d];
      for (std::size_t i = 0; i < gws.size(); ++i) {
        for (std::size_t j = i + 1; j < gws.size(); ++j) {
          core_graph.AddEdge(
              core_index_[gws[i]], core_index_[gws[j]],
              IntraDistance(static_cast<std::uint32_t>(d), local_of_[gws[i]],
                            local_of_[gws[j]]));
        }
      }
    }
    core_.Assign(core_count_ * (core_count_ + 1) / 2, kInfLatency);
    auto run_core = [&](std::size_t c) {
      const std::vector<double> dist = core_graph.Dijkstra(c);
      for (std::size_t k = c; k < core_count_; ++k) {
        P2P_CHECK_MSG(dist[k] < kInfLatency, "core graph disconnected");
        core_.Set(TriIndex(c, k, core_count_), dist[k]);
      }
    };
    if (opts.pool != nullptr) {
      opts.pool->ParallelFor(core_count_, run_core);
    } else {
      for (std::size_t c = 0; c < core_count_; ++c) run_core(c);
    }
  }

  // ---- Phase 3: flatten per-router portal spans for query time. A portal
  // is a (core node, entry distance) pair; queries minimise over the
  // cartesian product of both endpoints' portals.
  {
    const obs::ScopeTimer timer(
        ProfileOrNull(opts.metrics, "net.oracle.phase.portal_ms"));
    portal_offset_.assign(router_count_ + 1, 0);
    for (NodeIdx r = 0; r < router_count_; ++r) {
      const std::size_t n = core_index_[r] != kNone
                                ? 1
                                : domain_gateways[topo.domain_of[r]].size();
      portal_offset_[r + 1] =
          portal_offset_[r] + static_cast<std::uint32_t>(n);
    }
    portal_core_.resize(portal_offset_[router_count_]);
    portal_dist_.resize(portal_offset_[router_count_]);
    // With the offsets fixed above, each router writes only its own
    // [offset, offset+n) span — disjoint outputs, no RNG, so the fill
    // chunks across the pool without affecting results.
    auto fill_portals = [&](std::size_t begin, std::size_t end) {
      for (NodeIdx r = begin; r < end; ++r) {
        std::size_t at = portal_offset_[r];
        if (core_index_[r] != kNone) {
          portal_core_[at] = core_index_[r];
          portal_dist_[at] = 0.0;
          continue;
        }
        const std::uint32_t d = stub_domain_[r];
        for (const NodeIdx g : domain_gateways[d]) {
          portal_core_[at] = core_index_[g];
          portal_dist_[at] = IntraDistance(d, local_of_[r], local_of_[g]);
          ++at;
        }
      }
    };
    if (opts.pool != nullptr) {
      opts.pool->ParallelForRange(router_count_, 2048, fill_portals);
    } else {
      fill_portals(0, router_count_);
    }
  }
}

void LatencyOracle::RecordBuildMetrics(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->gauge("net.oracle.kind")
      .Set(kind_ == OracleKind::kHierarchical ? 1.0 : 0.0);
  metrics->gauge("net.oracle.routers")
      .Set(static_cast<double>(router_count_));
  metrics->gauge("net.oracle.core_nodes")
      .Set(static_cast<double>(core_count_));
  metrics->gauge("net.oracle.stub_domains")
      .Set(static_cast<double>(domain_count_));
  metrics->gauge("net.oracle.gateways")
      .Set(static_cast<double>(gateway_count_));
  metrics->gauge("net.oracle.bytes").Set(static_cast<double>(MemoryBytes()));
}

double LatencyOracle::HierRouterDistance(NodeIdx a, NodeIdx b) const {
  double best = kInfLatency;
  // Same-stub-domain pairs may have a best path that never leaves the
  // domain; portal composition only covers paths through the core.
  const std::uint32_t da = stub_domain_[a];
  if (da != kNone && da == stub_domain_[b])
    best = IntraDistance(da, local_of_[a], local_of_[b]);
  const std::size_t a_begin = portal_offset_[a], a_end = portal_offset_[a + 1];
  const std::size_t b_begin = portal_offset_[b], b_end = portal_offset_[b + 1];
  if (a_end - a_begin == 1 && b_end - b_begin == 1) {
    // Single-gateway fast path: one triangle lookup, two adds.
    const double via = portal_dist_[a_begin] +
                       CoreDistance(portal_core_[a_begin], portal_core_[b_begin]) +
                       portal_dist_[b_begin];
    return std::min(best, via);
  }
  for (std::size_t i = a_begin; i < a_end; ++i) {
    const double da_ms = portal_dist_[i];
    for (std::size_t j = b_begin; j < b_end; ++j) {
      const double via =
          da_ms + CoreDistance(portal_core_[i], portal_core_[j]) +
          portal_dist_[j];
      best = std::min(best, via);
    }
  }
  return best;
}

double LatencyOracle::RouterDistance(NodeIdx a, NodeIdx b) const {
  P2P_CHECK(a < router_count_ && b < router_count_);
  if (a == b) return 0.0;
  if (kind_ == OracleKind::kFlat)
    return a <= b ? flat_.Get(TriIndex(a, b, router_count_))
                  : flat_.Get(TriIndex(b, a, router_count_));
  return HierRouterDistance(a, b);
}

double LatencyOracle::Latency(HostIdx a, HostIdx b) const {
  P2P_CHECK(a < host_count() && b < host_count());
  if (a == b) return 0.0;
  return host_last_hop_[a] + RouterDistance(host_router_[a], host_router_[b]) +
         host_last_hop_[b];
}

std::size_t LatencyOracle::MemoryBytes() const {
  auto vec_bytes = [](const auto& v) {
    return v.size() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  return flat_.bytes() + core_.bytes() + intra_.bytes() +
         vec_bytes(core_index_) + vec_bytes(stub_domain_) +
         vec_bytes(local_of_) + vec_bytes(domain_size_) +
         vec_bytes(intra_offset_) + vec_bytes(portal_offset_) +
         vec_bytes(portal_core_) + vec_bytes(portal_dist_) +
         vec_bytes(host_router_) + vec_bytes(host_last_hop_);
}

}  // namespace p2p::net
