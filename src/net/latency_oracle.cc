#include "net/latency_oracle.h"

#include <algorithm>

#include "util/check.h"

namespace p2p::net {

LatencyOracle::LatencyOracle(const TransitStubTopology& topo,
                             util::ThreadPool* pool)
    : router_count_(topo.router_count()),
      host_router_(topo.host_router),
      host_last_hop_(topo.host_last_hop_ms) {
  router_dist_.assign(router_count_ * router_count_, kInfLatency);
  auto run_source = [&](std::size_t r) {
    const std::vector<double> d = topo.routers.Dijkstra(r);
    std::copy(d.begin(), d.end(),
              router_dist_.begin() +
                  static_cast<std::ptrdiff_t>(r * router_count_));
  };
  if (pool != nullptr) {
    pool->ParallelFor(router_count_, run_source);
  } else {
    for (std::size_t r = 0; r < router_count_; ++r) run_source(r);
  }
  // The generator guarantees connectivity; every distance must be finite.
  for (double d : router_dist_) P2P_CHECK(d < kInfLatency);
}

double LatencyOracle::RouterDistance(NodeIdx a, NodeIdx b) const {
  P2P_CHECK(a < router_count_ && b < router_count_);
  return router_dist_[a * router_count_ + b];
}

double LatencyOracle::Latency(HostIdx a, HostIdx b) const {
  P2P_CHECK(a < host_count() && b < host_count());
  if (a == b) return 0.0;
  return host_last_hop_[a] + RouterDistance(host_router_[a], host_router_[b]) +
         host_last_hop_[b];
}

}  // namespace p2p::net
