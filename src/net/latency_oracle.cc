#include "net/latency_oracle.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace p2p::net {

LatencyOracle::LatencyOracle(const TransitStubTopology& topo,
                             util::ThreadPool* pool)
    : router_count_(topo.router_count()),
      host_router_(topo.host_router),
      host_last_hop_(topo.host_last_hop_ms) {
  router_dist_.assign(router_count_ * (router_count_ + 1) / 2, kInfLatency);
  // Source r writes only the cells (r, c) with c >= r, so under a parallel
  // fill every packed cell has exactly one writer and no synchronisation is
  // needed (the old full-matrix layout had the same property per row).
  auto run_source = [&](std::size_t r) {
    const std::vector<double> d = topo.routers.Dijkstra(r);
    for (std::size_t c = r; c < router_count_; ++c)
      router_dist_[TriIndex(r, c)] = d[c];
  };
  if (pool != nullptr) {
    pool->ParallelFor(router_count_, run_source);
  } else {
    for (std::size_t r = 0; r < router_count_; ++r) run_source(r);
  }
  // The generator guarantees connectivity; every distance must be finite.
  for (double d : router_dist_) P2P_CHECK(d < kInfLatency);
#ifndef NDEBUG
  // The packed layout assumes Dijkstra distances are symmetric (they are:
  // the router graph is undirected). Spot-check a few sources in debug
  // builds by recomputing their full row and comparing both triangles.
  const std::size_t step = std::max<std::size_t>(1, router_count_ / 4);
  for (std::size_t r = 0; r < router_count_; r += step) {
    const std::vector<double> d = topo.routers.Dijkstra(r);
    for (std::size_t c = 0; c < router_count_; ++c)
      P2P_DCHECK(std::abs(RouterDistance(r, c) - d[c]) <= 1e-9);
  }
#endif
}

double LatencyOracle::RouterDistance(NodeIdx a, NodeIdx b) const {
  P2P_CHECK(a < router_count_ && b < router_count_);
  return a <= b ? router_dist_[TriIndex(a, b)] : router_dist_[TriIndex(b, a)];
}

double LatencyOracle::Latency(HostIdx a, HostIdx b) const {
  P2P_CHECK(a < host_count() && b < host_count());
  if (a == b) return 0.0;
  return host_last_hop_[a] + RouterDistance(host_router_[a], host_router_[b]) +
         host_last_hop_[b];
}

}  // namespace p2p::net
