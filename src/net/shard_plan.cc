#include "net/shard_plan.h"

#include <algorithm>

#include "util/check.h"

namespace p2p::net {

double ShardLookaheadMs(const TransitStubParams& params) {
  return 2.0 * (params.last_hop_min_ms + params.stub_transit_link_ms);
}

ShardPlan PlanShards(const TransitStubTopology& topo, std::size_t shards) {
  P2P_CHECK_MSG(shards >= 1, "need at least one shard");
  ShardPlan plan;
  plan.shards = shards;
  plan.lookahead_ms = ShardLookaheadMs(topo.params);
  plan.shard_of_host.assign(topo.host_count(), 0);
  plan.hosts_per_shard.assign(shards, 0);

  if (shards == 1) {
    plan.hosts_per_shard[0] = topo.host_count();
    return plan;
  }

  // Host count per stub domain. Hosts attach to stub routers only; a
  // transit-attached host would sit outside every stub domain and void the
  // two-stub-transit-links argument the lookahead rests on.
  std::vector<std::size_t> domain_hosts(topo.params.total_stub_domains(), 0);
  for (HostIdx h = 0; h < topo.host_count(); ++h) {
    const NodeIdx r = topo.host_router[h];
    P2P_CHECK_MSG(!topo.is_transit[r],
                  "host " << h << " attaches to a transit router");
    ++domain_hosts[topo.domain_of[r]];
  }

  struct DomainLoad {
    std::size_t hosts;
    std::size_t domain;
  };
  std::vector<DomainLoad> order;
  order.reserve(domain_hosts.size());
  for (std::size_t d = 0; d < domain_hosts.size(); ++d) {
    if (domain_hosts[d] > 0) order.push_back({domain_hosts[d], d});
  }
  P2P_CHECK_MSG(order.size() >= shards,
                "only " << order.size() << " populated stub domains for "
                        << shards << " shards");
  std::sort(order.begin(), order.end(),
            [](const DomainLoad& a, const DomainLoad& b) {
              if (a.hosts != b.hosts) return a.hosts > b.hosts;
              return a.domain < b.domain;
            });

  // Greedy least-loaded, deterministic tie-break on the lowest shard index.
  std::vector<std::uint32_t> shard_of_domain(domain_hosts.size(), 0);
  for (const DomainLoad& d : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      if (plan.hosts_per_shard[s] < plan.hosts_per_shard[best]) best = s;
    }
    shard_of_domain[d.domain] = static_cast<std::uint32_t>(best);
    plan.hosts_per_shard[best] += d.hosts;
  }
  for (HostIdx h = 0; h < topo.host_count(); ++h)
    plan.shard_of_host[h] = shard_of_domain[topo.domain_of[topo.host_router[h]]];
  return plan;
}

}  // namespace p2p::net
