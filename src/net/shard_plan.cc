#include "net/shard_plan.h"

#include <algorithm>
#include <limits>

#include "net/latency_oracle.h"
#include "util/check.h"

namespace p2p::net {

double ShardLookaheadMs(const TransitStubParams& params) {
  return 2.0 * (params.last_hop_min_ms + params.stub_transit_link_ms);
}

ShardPlan PlanShards(const TransitStubTopology& topo, std::size_t shards) {
  P2P_CHECK_MSG(shards >= 1, "need at least one shard");
  ShardPlan plan;
  plan.shards = shards;
  plan.lookahead_ms = ShardLookaheadMs(topo.params);
  plan.shard_of_host.assign(topo.host_count(), 0);
  plan.hosts_per_shard.assign(shards, 0);

  if (shards == 1) {
    plan.hosts_per_shard[0] = topo.host_count();
    return plan;
  }

  // Host count per stub domain. Hosts attach to stub routers only; a
  // transit-attached host would sit outside every stub domain and void the
  // two-stub-transit-links argument the lookahead rests on.
  std::vector<std::size_t> domain_hosts(topo.params.total_stub_domains(), 0);
  for (HostIdx h = 0; h < topo.host_count(); ++h) {
    const NodeIdx r = topo.host_router[h];
    P2P_CHECK_MSG(!topo.is_transit[r],
                  "host " << h << " attaches to a transit router");
    ++domain_hosts[topo.domain_of[r]];
  }

  struct DomainLoad {
    std::size_t hosts;
    std::size_t domain;
  };
  std::vector<DomainLoad> order;
  order.reserve(domain_hosts.size());
  for (std::size_t d = 0; d < domain_hosts.size(); ++d) {
    if (domain_hosts[d] > 0) order.push_back({domain_hosts[d], d});
  }
  P2P_CHECK_MSG(order.size() >= shards,
                "only " << order.size() << " populated stub domains for "
                        << shards << " shards");
  std::sort(order.begin(), order.end(),
            [](const DomainLoad& a, const DomainLoad& b) {
              if (a.hosts != b.hosts) return a.hosts > b.hosts;
              return a.domain < b.domain;
            });

  // Greedy least-loaded, deterministic tie-break on the lowest shard index.
  std::vector<std::uint32_t> shard_of_domain(domain_hosts.size(), 0);
  for (const DomainLoad& d : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      if (plan.hosts_per_shard[s] < plan.hosts_per_shard[best]) best = s;
    }
    shard_of_domain[d.domain] = static_cast<std::uint32_t>(best);
    plan.hosts_per_shard[best] += d.hosts;
  }
  for (HostIdx h = 0; h < topo.host_count(); ++h)
    plan.shard_of_host[h] = shard_of_domain[topo.domain_of[topo.host_router[h]]];
  return plan;
}

// Measured per-pair lookahead via the gateway reduction.
//
// Every cross-shard path is a cross-stub-domain path, and the only links
// leaving a stub domain are its attach (gateway) links, so
//
//   Latency(a, b) = last_hop(a) + dist(r_a, g1) + dist(g1, g2)
//                   + dist(g2, r_b) + last_hop(b)
//
// for some gateways g1 of a's domain, g2 of b's domain. Folding the
// sender/receiver side into a per-gateway cost
//
//   A(g) = min over hosts h in g's domain of last_hop(h) + dist(r_h, g)
//
// makes the pair minimum   min over gateway pairs of A(g1) + dist(g1, g2)
// + A(g2).  Both directions of the equality follow from the triangle
// inequality of the oracle's distances, so the reduction is exact for the
// flat and the hierarchical backend alike — O(gateways^2) oracle queries
// instead of O(hosts^2).
void ExtractLookahead(const TransitStubTopology& topo,
                      const LatencyOracle& oracle, ShardPlan& plan) {
  const std::size_t shards = plan.shards;
  const double inf = std::numeric_limits<double>::infinity();
  plan.lookahead_matrix.assign(shards * shards, 0.0);
  plan.extracted_lookahead_ms = plan.lookahead_ms;
  if (shards <= 1) return;

  // Cheapest last hop per stub router, over the hosts attached to it.
  const std::size_t n_routers = topo.routers.node_count();
  std::vector<double> min_hop(n_routers, inf);
  for (HostIdx h = 0; h < topo.host_count(); ++h) {
    const NodeIdx r = topo.host_router[h];
    min_hop[r] = std::min(min_hop[r], topo.host_last_hop_ms[h]);
  }

  // Stub routers grouped by domain (transit routers host nothing and are
  // interior to every cross-domain path, so only stub routers matter).
  const std::size_t n_domains = topo.params.total_stub_domains();
  std::vector<std::vector<NodeIdx>> domain_routers(n_domains);
  for (NodeIdx r = 0; r < n_routers; ++r) {
    if (!topo.is_transit[r]) domain_routers[topo.domain_of[r]].push_back(r);
  }
  std::vector<std::uint32_t> shard_of_domain(n_domains, 0);
  std::vector<bool> domain_populated(n_domains, false);
  for (HostIdx h = 0; h < topo.host_count(); ++h) {
    const std::size_t d = topo.domain_of[topo.host_router[h]];
    shard_of_domain[d] = plan.shard_of_host[h];
    domain_populated[d] = true;
  }

  // Gateways (stub routers with a transit neighbor) and their A(g) costs.
  struct Gateway {
    NodeIdx router;
    std::uint32_t shard;
    double a;  // min over same-domain hosts of last_hop + dist(r_h, g)
  };
  std::vector<Gateway> gws;
  for (std::size_t d = 0; d < n_domains; ++d) {
    if (!domain_populated[d]) continue;
    for (const NodeIdx g : domain_routers[d]) {
      bool is_gateway = false;
      for (const auto& e : topo.routers.Neighbors(g)) {
        if (topo.is_transit[e.to]) {
          is_gateway = true;
          break;
        }
      }
      if (!is_gateway) continue;
      double a = inf;
      for (const NodeIdx r : domain_routers[d]) {
        if (min_hop[r] == inf) continue;
        a = std::min(a, min_hop[r] + oracle.RouterDistance(r, g));
      }
      gws.push_back({g, shard_of_domain[d], a});
    }
  }

  std::vector<double>& L = plan.lookahead_matrix;
  std::fill(L.begin(), L.end(), inf);
  for (std::size_t i = 0; i < gws.size(); ++i) {
    for (std::size_t j = 0; j < gws.size(); ++j) {
      if (gws[i].shard == gws[j].shard) continue;
      double& cell = L[gws[i].shard * shards + gws[j].shard];
      const double d = gws[i].a + gws[j].a +
                       oracle.RouterDistance(gws[i].router, gws[j].router);
      cell = std::min(cell, d);
    }
  }
  double global_min = inf;
  for (std::size_t i = 0; i < shards; ++i) {
    for (std::size_t j = 0; j < shards; ++j) {
      double& cell = L[i * shards + j];
      if (i == j) {
        cell = 0.0;
        continue;
      }
      P2P_CHECK_MSG(cell < inf, "no cross-shard channel between shards "
                                    << i << " and " << j);
      // The structural bound is itself sound, so it can only sharpen a
      // matrix entry (it never does for exact extraction; the max guards
      // against a future oracle backend with approximate distances).
      cell = std::max(cell, plan.lookahead_ms);
      global_min = std::min(global_min, cell);
    }
  }
  plan.extracted_lookahead_ms = global_min;
}

}  // namespace p2p::net
