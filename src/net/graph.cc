#include "net/graph.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace p2p::net {

NodeIdx Graph::AddNode() {
  adj_.emplace_back();
  return adj_.size() - 1;
}

void Graph::AddEdge(NodeIdx a, NodeIdx b, double w) {
  AddEdgeRaw(a, b, w);
  ++edge_count_;
}

void Graph::AddEdgeRaw(NodeIdx a, NodeIdx b, double w) {
  P2P_CHECK(a < adj_.size() && b < adj_.size());
  P2P_CHECK_MSG(a != b, "self-loop at node " << a);
  P2P_CHECK_MSG(w > 0.0, "non-positive edge weight " << w);
  adj_[a].push_back({b, w});
  adj_[b].push_back({a, w});
}

bool Graph::HasEdge(NodeIdx a, NodeIdx b) const {
  P2P_CHECK(a < adj_.size() && b < adj_.size());
  const auto& na = adj_[a];
  return std::any_of(na.begin(), na.end(),
                     [b](const Neighbor& n) { return n.to == b; });
}

std::span<const Graph::Neighbor> Graph::Neighbors(NodeIdx v) const {
  return adj_.at(v);
}

std::vector<double> Graph::Dijkstra(NodeIdx source) const {
  P2P_CHECK(source < adj_.size());
  std::vector<double> dist(adj_.size(), kInfLatency);
  dist[source] = 0.0;
  using Item = std::pair<double, NodeIdx>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;  // stale entry
    for (const auto& [to, w] : adj_[v]) {
      const double nd = d + w;
      if (nd < dist[to]) {
        dist[to] = nd;
        pq.emplace(nd, to);
      }
    }
  }
  return dist;
}

bool Graph::IsConnected() const {
  if (adj_.empty()) return true;
  std::vector<char> seen(adj_.size(), 0);
  std::vector<NodeIdx> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeIdx v = stack.back();
    stack.pop_back();
    for (const auto& [to, w] : adj_[v]) {
      (void)w;
      if (!seen[to]) {
        seen[to] = 1;
        ++visited;
        stack.push_back(to);
      }
    }
  }
  return visited == adj_.size();
}

}  // namespace p2p::net
