// Host-to-host latency oracle over a transit-stub topology.
//
// Precomputes all-pairs shortest-path distances between routers (one
// Dijkstra per router, optionally parallelised across a thread pool), then
// answers host queries as
//   latency(a, b) = last_hop(a) + dist(router(a), router(b)) + last_hop(b)
// with latency(a, a) == 0. This is the "oracle" pairwise latency the paper's
// `Critical` algorithm assumes; the `Leafset` algorithm instead uses
// coordinate estimates derived from this oracle's measurements.
#pragma once

#include <cstddef>
#include <vector>

#include "net/transit_stub.h"
#include "util/thread_pool.h"

namespace p2p::net {

class LatencyOracle {
 public:
  // Builds the router distance matrix sequentially.
  explicit LatencyOracle(const TransitStubTopology& topo)
      : LatencyOracle(topo, nullptr) {}

  // Builds using `pool` if non-null (one Dijkstra task per router).
  LatencyOracle(const TransitStubTopology& topo, util::ThreadPool* pool);

  std::size_t host_count() const { return host_router_.size(); }

  // End-to-end latency between hosts, in ms. Symmetric; 0 on the diagonal.
  double Latency(HostIdx a, HostIdx b) const;

  // Router-level distance (ms) between two routers.
  double RouterDistance(NodeIdx a, NodeIdx b) const;

  double last_hop_ms(HostIdx h) const { return host_last_hop_[h]; }

 private:
  // Packed upper-triangle index for a <= b: row a starts after the
  // (router_count_ + ... + router_count_-a+1) entries of rows above it.
  std::size_t TriIndex(NodeIdx a, NodeIdx b) const {
    return a * router_count_ - a * (a - 1) / 2 + (b - a);
  }

  std::size_t router_count_;
  // Distances are symmetric, so only the upper triangle (b >= a) is stored:
  // router_count_*(router_count_+1)/2 doubles instead of router_count_^2 —
  // half the footprint of the old full matrix. The branch + index
  // arithmetic this adds to RouterDistance was measured against the full
  // row-major layout and is lost in the noise: ALM planning reads latencies
  // through a session-local LatencyMatrix (filled once), so this lookup is
  // off the hot path and the fill itself is Dijkstra-dominated.
  std::vector<double> router_dist_;
  std::vector<NodeIdx> host_router_;
  std::vector<double> host_last_hop_;
};

}  // namespace p2p::net
