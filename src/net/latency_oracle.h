// Host-to-host latency oracle over a transit-stub topology.
//
// Two exact backends answer the same queries:
//
//   * kFlat — all-pairs shortest-path distances between routers (one
//     Dijkstra per router, optionally parallelised across a thread pool)
//     stored as a packed upper triangle. O(R²/2) doubles and R full
//     Dijkstras: fine at the paper's 600 routers, the wall at the router
//     counts a 10k–50k-host topology needs.
//   * kHierarchical — exploits the transit-stub structure GT-ITM graphs
//     have: every path between stub domains is forced through the domain's
//     gateway routers (the only routers with links leaving the domain).
//     The build computes (a) per-stub-domain all-pairs over the tiny
//     domain subgraphs, embarrassingly parallel, and (b) a dense all-pairs
//     core over transit routers + stub gateways only, where same-domain
//     gateway pairs are bridged by their intra-domain distance. Queries
//     compose last_hop + intra_stub_to_gateway + core + gateway_to_stub +
//     last_hop, minimised over gateway pairs (single-gateway domains — the
//     common case — take a branch-free fast path). docs/NET.md carries the
//     exactness argument; tests/net_oracle_diff_test.cc pins both backends
//     to each other across randomized topology seeds.
//
// Host queries are
//   latency(a, b) = last_hop(a) + dist(router(a), router(b)) + last_hop(b)
// with latency(a, a) == 0. This is the "oracle" pairwise latency the
// paper's `Critical` algorithm assumes; the `Leafset` algorithm instead
// uses coordinate estimates derived from this oracle's measurements.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/transit_stub.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace p2p::net {

enum class OracleKind {
  kFlat,          // packed all-pairs router triangle (reference)
  kHierarchical,  // per-stub-domain all-pairs + gateway/transit core
};

enum class OraclePrecision {
  kF64,  // double distance storage (reference)
  kF32,  // float storage: halves the core-matrix memory, ≤1e-3 ms error
};

struct OracleOptions {
  OracleKind kind = OracleKind::kFlat;
  OraclePrecision precision = OraclePrecision::kF64;
  // Parallelises the per-source Dijkstra fills when non-null.
  util::ThreadPool* pool = nullptr;
  // Optional build instrumentation: net.oracle.* gauges (deterministic:
  // structure sizes, bytes) and net.oracle.phase.*_ms wall-clock profiles.
  obs::MetricsRegistry* metrics = nullptr;
};

class LatencyOracle {
 public:
  // Builds the flat router distance matrix sequentially.
  explicit LatencyOracle(const TransitStubTopology& topo)
      : LatencyOracle(topo, OracleOptions{}) {}

  // Flat build using `pool` if non-null (one Dijkstra task per router).
  LatencyOracle(const TransitStubTopology& topo, util::ThreadPool* pool)
      : LatencyOracle(topo, OracleOptions{.pool = pool}) {}

  LatencyOracle(const TransitStubTopology& topo, const OracleOptions& opts);

  OracleKind kind() const { return kind_; }
  bool uses_float_storage() const { return use_float_; }

  std::size_t host_count() const { return host_router_.size(); }

  // End-to-end latency between hosts, in ms. Symmetric; 0 on the diagonal.
  double Latency(HostIdx a, HostIdx b) const;

  // Router-level distance (ms) between two routers.
  double RouterDistance(NodeIdx a, NodeIdx b) const;

  double last_hop_ms(HostIdx h) const { return host_last_hop_[h]; }

  // Bytes held by the distance structures (matrices, portals, index maps,
  // host attachment arrays). Deterministic — derived from element counts,
  // not allocator state — so it can be asserted on and diffed in benches.
  std::size_t MemoryBytes() const;

  // Hierarchical-structure introspection (0 for the flat backend).
  std::size_t core_node_count() const { return core_count_; }
  std::size_t stub_domain_count() const { return domain_count_; }
  std::size_t gateway_count() const { return gateway_count_; }

 private:
  // Distances live in either a double or a float vector; queries widen
  // floats back to double. Keeping both layouts behind one accessor pair
  // lets every matrix (flat triangle, core triangle, intra blocks) switch
  // precision with the same OraclePrecision knob.
  struct DistStore {
    std::vector<double> d64;
    std::vector<float> f32;
    bool use_float = false;

    void Assign(std::size_t n, double v) {
      if (use_float) {
        f32.assign(n, static_cast<float>(v));
      } else {
        d64.assign(n, v);
      }
    }
    void Set(std::size_t i, double v) {
      if (use_float) {
        f32[i] = static_cast<float>(v);
      } else {
        d64[i] = v;
      }
    }
    double Get(std::size_t i) const {
      return use_float ? static_cast<double>(f32[i]) : d64[i];
    }
    std::size_t size() const { return use_float ? f32.size() : d64.size(); }
    std::size_t bytes() const {
      return d64.size() * sizeof(double) + f32.size() * sizeof(float);
    }
  };

  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  // Packed upper-triangle index for i <= j over an n×n symmetric matrix.
  static std::size_t TriIndex(std::size_t i, std::size_t j, std::size_t n) {
    return i * n - i * (i - 1) / 2 + (j - i);
  }

  void BuildFlat(const TransitStubTopology& topo, const OracleOptions& opts);
  void BuildHierarchical(const TransitStubTopology& topo,
                         const OracleOptions& opts);
  void RecordBuildMetrics(obs::MetricsRegistry* metrics) const;

  double CoreDistance(std::uint32_t ca, std::uint32_t cb) const {
    return ca <= cb ? core_.Get(TriIndex(ca, cb, core_count_))
                    : core_.Get(TriIndex(cb, ca, core_count_));
  }
  double IntraDistance(std::uint32_t domain, std::uint32_t la,
                       std::uint32_t lb) const {
    const std::size_t m = domain_size_[domain];
    const std::size_t base = intra_offset_[domain];
    return la <= lb ? intra_.Get(base + TriIndex(la, lb, m))
                    : intra_.Get(base + TriIndex(lb, la, m));
  }
  double HierRouterDistance(NodeIdx a, NodeIdx b) const;

  OracleKind kind_ = OracleKind::kFlat;
  bool use_float_ = false;
  std::size_t router_count_ = 0;

  // --- flat backend: packed upper triangle (b >= a) over all routers ----
  DistStore flat_;

  // --- hierarchical backend ---------------------------------------------
  std::size_t core_count_ = 0;
  std::size_t domain_count_ = 0;
  std::size_t gateway_count_ = 0;
  DistStore core_;                          // packed triangle over core nodes
  std::vector<std::uint32_t> core_index_;   // router -> core idx or kNone
  std::vector<std::uint32_t> stub_domain_;  // router -> stub domain or kNone
  std::vector<std::uint32_t> local_of_;     // stub router -> idx in domain
  std::vector<std::uint32_t> domain_size_;  // stub domain -> member count
  std::vector<std::size_t> intra_offset_;   // stub domain -> intra_ base
  DistStore intra_;  // per-domain packed triangles, concatenated
  // Portals of a router: the core nodes its traffic can enter the core
  // through, with the intra-domain distance to each. Core routers have the
  // single portal (self, 0); stub routers list their domain's gateways.
  std::vector<std::uint32_t> portal_offset_;  // router -> [begin, end)
  std::vector<std::uint32_t> portal_core_;
  std::vector<double> portal_dist_;

  // --- hosts -------------------------------------------------------------
  std::vector<NodeIdx> host_router_;
  std::vector<double> host_last_hop_;
};

}  // namespace p2p::net
