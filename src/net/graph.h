// Weighted undirected graph with single-source shortest paths (Dijkstra).
// Used for the router-level transit-stub topology.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace p2p::net {

using NodeIdx = std::size_t;

inline constexpr double kInfLatency = std::numeric_limits<double>::infinity();

class Graph {
 public:
  explicit Graph(std::size_t node_count = 0) : adj_(node_count) {}

  std::size_t node_count() const { return adj_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  NodeIdx AddNode();

  // Add an undirected edge of weight `w` (w > 0). Parallel edges are allowed
  // and harmless for shortest paths.
  void AddEdge(NodeIdx a, NodeIdx b, double w);

  // AddEdge without bumping edge_count(): for bulk fills that insert edges
  // concurrently over DISJOINT node sets (each adjacency list has a single
  // writer). The caller accounts the total afterwards via BumpEdgeCount.
  void AddEdgeRaw(NodeIdx a, NodeIdx b, double w);
  void BumpEdgeCount(std::size_t n) { edge_count_ += n; }

  bool HasEdge(NodeIdx a, NodeIdx b) const;

  struct Neighbor {
    NodeIdx to;
    double weight;
  };
  std::span<const Neighbor> Neighbors(NodeIdx v) const;

  std::size_t Degree(NodeIdx v) const { return adj_.at(v).size(); }

  // Shortest-path distances from `source` to every node (kInfLatency where
  // unreachable).
  std::vector<double> Dijkstra(NodeIdx source) const;

  // True if every node is reachable from node 0 (or the graph is empty).
  bool IsConnected() const;

 private:
  std::vector<std::vector<Neighbor>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace p2p::net
