// Synthetic access-bandwidth population, substituting for the private
// Saroiu/Gribble Gnutella measurement trace the paper evaluates on
// (DESIGN.md §4.2). Hosts are drawn from modal access classes (modem, ISDN,
// DSL, cable, T1, T3) with asymmetric up/down rates and multiplicative
// jitter. The class mix reproduces the property §4.2 of the paper relies
// on: "most hosts have downstream bandwidths higher than the upstream
// bandwidths of most others", which makes uplink estimation via
// max-over-leafset nearly exact while downlink can be underestimated.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"

namespace p2p::net {

struct HostBandwidth {
  double up_kbps;    // last-hop uplink capacity
  double down_kbps;  // last-hop downlink capacity
};

struct AccessClass {
  std::string name;
  double fraction;   // population share; fractions sum to 1
  double up_kbps;
  double down_kbps;
};

// The default Gnutella-like class mix (shares approximate the published
// measurement study's reported distribution).
std::vector<AccessClass> GnutellaAccessClasses();

class BandwidthModel {
 public:
  // Draw `host_count` hosts from `classes`; each host's rates get a
  // multiplicative jitter uniform in [1-jitter, 1+jitter].
  BandwidthModel(std::vector<AccessClass> classes, std::size_t host_count,
                 util::Rng& rng, double jitter = 0.15);

  // Convenience: default Gnutella-like classes.
  BandwidthModel(std::size_t host_count, util::Rng& rng)
      : BandwidthModel(GnutellaAccessClasses(), host_count, rng) {}

  std::size_t host_count() const { return hosts_.size(); }
  const HostBandwidth& host(std::size_t h) const { return hosts_.at(h); }

  // True bottleneck bandwidth of a one-directional transfer a -> b under
  // the last-hop-bottleneck assumption: min(up(a), down(b)).
  double PathBottleneckKbps(std::size_t a, std::size_t b) const;

  const std::vector<AccessClass>& classes() const { return classes_; }

 private:
  std::vector<AccessClass> classes_;
  std::vector<HostBandwidth> hosts_;
};

}  // namespace p2p::net
