// Host-to-shard placement for the sharded simulation kernel.
//
// The conservative-lookahead barrier (sim/sharded.h) is only correct when
// every cross-shard message takes at least `lookahead_ms` of virtual time
// to arrive. The transit-stub hierarchy gives that bound structurally:
// hosts are partitioned along whole stub domains, so any cross-shard path
// must leave one stub domain and enter another — two stub-transit links
// plus two last hops, and link latencies are fixed per class:
//
//   cross-shard latency >= 2 * (last_hop_min_ms + stub_transit_link_ms)
//
// (56 ms for every preset). The bound is computed once from the topology
// parameters, not sampled from the oracle, so it is exact by construction;
// sim/sharded.cc re-checks it per message with a P2P_CHECK.
//
// Placement is a deterministic greedy bin-pack: stub domains in decreasing
// host-count order (ties by domain index) onto the currently least-loaded
// shard (ties by shard index). Host counts per domain are hash-uniform, so
// shards come out balanced to within one domain (~hosts/domains).
#pragma once

#include <cstdint>
#include <vector>

#include "net/transit_stub.h"

namespace p2p::net {

struct ShardPlan {
  std::size_t shards = 1;
  // shard_of_host[h] = owning shard of end host h.
  std::vector<std::uint32_t> shard_of_host;
  std::vector<std::size_t> hosts_per_shard;
  // Structural lower bound on cross-shard one-way latency (ms); the
  // lockstep window length of the sharded kernel.
  double lookahead_ms = 0.0;
};

// Partition `topo`'s end hosts into `shards` shards along whole stub
// domains. Requires 1 <= shards <= populated stub domains.
ShardPlan PlanShards(const TransitStubTopology& topo, std::size_t shards);

// The lookahead bound alone (2 * (last_hop_min_ms + stub_transit_link_ms)).
double ShardLookaheadMs(const TransitStubParams& params);

}  // namespace p2p::net
