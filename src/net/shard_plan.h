// Host-to-shard placement for the sharded simulation kernel.
//
// The conservative-lookahead barrier (sim/sharded.h) is only correct when
// every cross-shard message takes at least `lookahead_ms` of virtual time
// to arrive. The transit-stub hierarchy gives that bound structurally:
// hosts are partitioned along whole stub domains, so any cross-shard path
// must leave one stub domain and enter another — two stub-transit links
// plus two last hops, and link latencies are fixed per class:
//
//   cross-shard latency >= 2 * (last_hop_min_ms + stub_transit_link_ms)
//
// (56 ms for every preset). The bound is computed once from the topology
// parameters, not sampled from the oracle, so it is exact by construction;
// sim/sharded.cc re-checks it per message with a P2P_CHECK.
//
// ExtractLookahead sharpens the structural constant into a *measured*
// per-shard-pair matrix: for each ordered shard pair (i, j), the true
// minimum host-to-host latency across the actual domain→shard assignment,
// computed from oracle distances via the gateway reduction (see the .cc).
// The matrix min is the binding window constraint the sharded kernel
// advances by; each entry is a sound per-channel bound (every message from
// shard i to shard j takes at least matrix[i][j] ms of virtual time).
//
// Placement is a deterministic greedy bin-pack: stub domains in decreasing
// host-count order (ties by domain index) onto the currently least-loaded
// shard (ties by shard index). Host counts per domain are hash-uniform, so
// shards come out balanced to within one domain (~hosts/domains).
// Placement deliberately ignores latency: with multihomed stub domains
// (second attach to a uniformly random transit router), the multihome
// links connect nearly every transit neighborhood pair, so no balanced
// partition avoids a ~2*(last_hop+stub_transit) cross-shard path — the
// measured matrix, not the placement, is where the slack lives.
#pragma once

#include <cstdint>
#include <vector>

#include "net/transit_stub.h"

namespace p2p::net {

class LatencyOracle;

struct ShardPlan {
  std::size_t shards = 1;
  // shard_of_host[h] = owning shard of end host h.
  std::vector<std::uint32_t> shard_of_host;
  std::vector<std::size_t> hosts_per_shard;
  // Structural lower bound on cross-shard one-way latency (ms); the
  // lockstep window length of the retained fixed-lookahead kernel path.
  double lookahead_ms = 0.0;
  // Measured per-shard-pair lookahead (ms), row-major shards x shards:
  // lookahead_matrix[i * shards + j] is the minimum latency of any host in
  // shard i to any host in shard j (diagonal entries are 0 and unused).
  // Empty until ExtractLookahead() fills it.
  std::vector<double> lookahead_matrix;
  // min over off-diagonal matrix entries; 0 until extracted. Always >= the
  // structural lookahead_ms (the measured minimum can only sharpen it).
  double extracted_lookahead_ms = 0.0;

  double PairLookaheadMs(std::size_t i, std::size_t j) const {
    return lookahead_matrix[i * shards + j];
  }
};

// Partition `topo`'s end hosts into `shards` shards along whole stub
// domains. Requires 1 <= shards <= populated stub domains.
ShardPlan PlanShards(const TransitStubTopology& topo, std::size_t shards);

// The lookahead bound alone (2 * (last_hop_min_ms + stub_transit_link_ms)).
double ShardLookaheadMs(const TransitStubParams& params);

// Fill `plan.lookahead_matrix` / `plan.extracted_lookahead_ms` with the
// measured minimum cross-shard latency per ordered shard pair, computed
// from `oracle` distances and the plan's actual host assignment. Exact —
// equal to min over cross-shard host pairs of oracle.Latency(a, b) — but
// computed through the per-domain gateway reduction, so it costs
// O(gateways^2) oracle queries instead of O(hosts^2). Soundness (each
// entry <= every observed cross-shard delivery latency) is re-checked per
// message by sim/sharded.cc and property-tested in tests/.
void ExtractLookahead(const TransitStubTopology& topo,
                      const LatencyOracle& oracle, ShardPlan& plan);

}  // namespace p2p::net
