#include "net/bandwidth_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace p2p::net {

std::vector<AccessClass> GnutellaAccessClasses() {
  // Shares approximate the Saroiu et al. measurement study: a quarter of
  // peers on dial-up-grade links, the bulk on asymmetric broadband
  // (cable/DSL), and a minority on symmetric high-capacity lines.
  return {
      {"modem", 0.08, 33.6, 56.0},
      {"isdn", 0.05, 128.0, 128.0},
      {"dsl", 0.25, 256.0, 1500.0},
      {"cable", 0.35, 400.0, 3000.0},
      {"t1", 0.22, 1544.0, 1544.0},
      {"t3", 0.05, 44736.0, 44736.0},
  };
}

BandwidthModel::BandwidthModel(std::vector<AccessClass> classes,
                               std::size_t host_count, util::Rng& rng,
                               double jitter)
    : classes_(std::move(classes)) {
  P2P_CHECK(!classes_.empty());
  P2P_CHECK(jitter >= 0.0 && jitter < 1.0);
  double total = 0.0;
  for (const auto& c : classes_) {
    P2P_CHECK_MSG(c.fraction > 0.0, "class " << c.name);
    P2P_CHECK_MSG(c.up_kbps > 0.0 && c.down_kbps > 0.0, "class " << c.name);
    total += c.fraction;
  }
  P2P_CHECK_MSG(std::abs(total - 1.0) < 1e-9,
                "class fractions sum to " << total);

  hosts_.reserve(host_count);
  for (std::size_t h = 0; h < host_count; ++h) {
    const double u = rng.NextDouble();
    double acc = 0.0;
    const AccessClass* pick = &classes_.back();
    for (const auto& c : classes_) {
      acc += c.fraction;
      if (u < acc) {
        pick = &c;
        break;
      }
    }
    const double j_up = rng.Uniform(1.0 - jitter, 1.0 + jitter);
    const double j_down = rng.Uniform(1.0 - jitter, 1.0 + jitter);
    hosts_.push_back({pick->up_kbps * j_up, pick->down_kbps * j_down});
  }
}

double BandwidthModel::PathBottleneckKbps(std::size_t a, std::size_t b) const {
  P2P_CHECK(a < hosts_.size() && b < hosts_.size());
  P2P_CHECK(a != b);
  return std::min(hosts_[a].up_kbps, hosts_[b].down_kbps);
}

}  // namespace p2p::net
