#include "net/transit_stub.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace p2p::net {
namespace {

// Wire `members` into a connected random subgraph: random spanning tree
// (each node links to a uniformly chosen earlier node in a shuffled order)
// plus extra edges with probability `extra_prob` per unordered pair.
void WireConnected(Graph& g, const std::vector<NodeIdx>& members,
                   double latency_ms, double extra_prob, util::Rng& rng) {
  P2P_CHECK(!members.empty());
  std::vector<NodeIdx> order = members;
  rng.Shuffle(order);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t j = rng.NextBounded(i);
    g.AddEdge(order[i], order[j], latency_ms);
  }
  if (extra_prob <= 0.0) return;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (!g.HasEdge(members[i], members[j]) && rng.Bernoulli(extra_prob)) {
        g.AddEdge(members[i], members[j], latency_ms);
      }
    }
  }
}

// RNG-draw-identical twin of WireConnected that records the edges instead
// of inserting them. Exact because each domain is wired exactly once over a
// fresh node block — `members` have no pre-existing edges among themselves,
// so WireConnected's HasEdge could only ever see this call's own
// spanning-tree edges, replicated by the local scan below (extra edges
// never collide: each unordered pair is visited once).
void PlanConnected(const std::vector<NodeIdx>& members, double extra_prob,
                   util::Rng& rng,
                   std::vector<std::pair<NodeIdx, NodeIdx>>& out) {
  P2P_CHECK(!members.empty());
  std::vector<NodeIdx> order = members;
  rng.Shuffle(order);
  const std::size_t tree_begin = out.size();
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t j = rng.NextBounded(i);
    out.emplace_back(order[i], order[j]);
  }
  if (extra_prob <= 0.0) return;
  const std::size_t tree_end = out.size();
  auto has_tree_edge = [&](NodeIdx a, NodeIdx b) {
    for (std::size_t k = tree_begin; k < tree_end; ++k) {
      if ((out[k].first == a && out[k].second == b) ||
          (out[k].first == b && out[k].second == a))
        return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (!has_tree_edge(members[i], members[j]) &&
          rng.Bernoulli(extra_prob)) {
        out.emplace_back(members[i], members[j]);
      }
    }
  }
}

}  // namespace

TransitStubParams PresetParams(TopologyPreset preset) {
  TransitStubParams p;  // defaults are the paper's §5.2 shape
  switch (preset) {
    case TopologyPreset::kPaper1200:
      break;
    case TopologyPreset::kHosts10k:
      p.transit_domains = 8;
      p.transit_routers_per_domain = 8;       // 64 transit routers
      p.stub_domains_per_transit_router = 4;  // 256 stub domains
      p.routers_per_stub_domain = 16;         // 4096 stub routers
      p.stub_multihome_prob = 0.3;
      p.end_hosts = 10000;
      break;
    case TopologyPreset::kHosts50k:
      p.transit_domains = 10;
      p.transit_routers_per_domain = 10;      // 100 transit routers
      p.stub_domains_per_transit_router = 6;  // 600 stub domains
      p.routers_per_stub_domain = 12;         // 7200 stub routers
      p.stub_multihome_prob = 0.3;
      p.end_hosts = 50000;
      break;
    case TopologyPreset::kHosts100k:
      p.transit_domains = 12;
      p.transit_routers_per_domain = 12;      // 144 transit routers
      p.stub_domains_per_transit_router = 6;  // 864 stub domains
      p.routers_per_stub_domain = 12;         // 10368 stub routers
      p.stub_multihome_prob = 0.3;
      p.end_hosts = 100000;
      break;
    case TopologyPreset::kHosts250k:
      p.transit_domains = 14;
      p.transit_routers_per_domain = 14;      // 196 transit routers
      p.stub_domains_per_transit_router = 7;  // 1372 stub domains
      p.routers_per_stub_domain = 12;         // 16464 stub routers
      p.stub_multihome_prob = 0.3;
      p.end_hosts = 250000;
      break;
  }
  return p;
}

TopologyPreset ParseTopologyPreset(const std::string& name) {
  if (name == "1200" || name == "paper") return TopologyPreset::kPaper1200;
  if (name == "10k" || name == "10000") return TopologyPreset::kHosts10k;
  if (name == "50k" || name == "50000") return TopologyPreset::kHosts50k;
  if (name == "100k" || name == "100000") return TopologyPreset::kHosts100k;
  if (name == "250k" || name == "250000") return TopologyPreset::kHosts250k;
  throw util::CheckError("unknown topology preset '" + name +
                         "' (1200|10k|50k|100k|250k)");
}

const char* TopologyPresetName(TopologyPreset preset) {
  switch (preset) {
    case TopologyPreset::kPaper1200: return "1200";
    case TopologyPreset::kHosts10k: return "10k";
    case TopologyPreset::kHosts50k: return "50k";
    case TopologyPreset::kHosts100k: return "100k";
    case TopologyPreset::kHosts250k: return "250k";
  }
  return "?";
}

TransitStubTopology GenerateTransitStub(const TransitStubParams& params,
                                        util::Rng& rng,
                                        util::ThreadPool* pool) {
  P2P_CHECK(params.transit_domains > 0);
  P2P_CHECK(params.transit_routers_per_domain > 0);
  P2P_CHECK(params.routers_per_stub_domain > 0);
  P2P_CHECK(params.last_hop_min_ms <= params.last_hop_max_ms);

  TransitStubTopology topo;
  topo.params = params;
  topo.routers = Graph(params.total_routers());
  topo.is_transit.assign(params.total_routers(), false);
  topo.domain_of.assign(params.total_routers(), 0);

  // Transit routers occupy indices [0, T); stub routers follow.
  const std::size_t kTransit = params.total_transit_routers();
  for (std::size_t i = 0; i < kTransit; ++i) {
    topo.is_transit[i] = true;
    topo.domain_of[i] = i / params.transit_routers_per_domain;
  }

  // 1. Wire each transit domain internally.
  std::vector<std::vector<NodeIdx>> transit_domains(params.transit_domains);
  for (std::size_t d = 0; d < params.transit_domains; ++d) {
    for (std::size_t k = 0; k < params.transit_routers_per_domain; ++k)
      transit_domains[d].push_back(d * params.transit_routers_per_domain + k);
    WireConnected(topo.routers, transit_domains[d], params.transit_link_ms,
                  params.intra_transit_extra_edge_prob, rng);
  }

  // 2. Interconnect transit domains: random spanning tree over domains, one
  //    gateway link per tree edge, endpoints chosen at random per domain.
  {
    std::vector<std::size_t> order(params.transit_domains);
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(order);
    for (std::size_t i = 1; i < order.size(); ++i) {
      const std::size_t a = order[i];
      const std::size_t b = order[rng.NextBounded(i)];
      const NodeIdx ra =
          transit_domains[a][rng.NextBounded(transit_domains[a].size())];
      const NodeIdx rb =
          transit_domains[b][rng.NextBounded(transit_domains[b].size())];
      topo.routers.AddEdge(ra, rb, params.transit_link_ms);
    }
  }

  // 3. Stub domains: each transit router owns `stub_domains_per_transit_
  //    router` domains of `routers_per_stub_domain` routers; the domain is
  //    internally wired with 10 ms links and attached to its transit router
  //    by a 25 ms link from a random member. With stub_multihome_prob > 0 a
  //    domain may gain a second attach link to a different transit router
  //    (two gateways); prob 0 draws no RNG and reproduces the paper shape.
  //    The RNG plan below draws in exactly the order the serial generator
  //    always did; only the draw-free edge materialisation fans out across
  //    the pool (disjoint per-domain node sets, one writer per adjacency
  //    list), so topologies are byte-identical at any thread count.
  const std::size_t kDomains = params.total_stub_domains();
  struct StubPlan {
    std::size_t edge_begin = 0, edge_end = 0;  // span in intra_edges
    NodeIdx owner = 0, attach = 0;
    NodeIdx owner2 = 0, attach2 = 0;
    bool multihomed = false;
  };
  std::vector<StubPlan> plans(kDomains);
  std::vector<std::pair<NodeIdx, NodeIdx>> intra_edges;
  std::size_t next_router = kTransit;
  std::size_t stub_domain_id = 0;
  std::vector<NodeIdx> members;
  for (std::size_t t = 0; t < kTransit; ++t) {
    for (std::size_t s = 0; s < params.stub_domains_per_transit_router; ++s) {
      members.clear();
      members.reserve(params.routers_per_stub_domain);
      for (std::size_t k = 0; k < params.routers_per_stub_domain; ++k) {
        const NodeIdx r = next_router++;
        topo.domain_of[r] = stub_domain_id;
        members.push_back(r);
      }
      StubPlan& plan = plans[stub_domain_id];
      plan.edge_begin = intra_edges.size();
      PlanConnected(members, params.intra_stub_extra_edge_prob, rng,
                    intra_edges);
      plan.edge_end = intra_edges.size();
      plan.owner = t;
      plan.attach = members[rng.NextBounded(members.size())];
      if (params.stub_multihome_prob > 0.0 && kTransit > 1 &&
          rng.Bernoulli(params.stub_multihome_prob)) {
        NodeIdx t2 = rng.NextBounded(kTransit - 1);
        if (t2 >= t) ++t2;  // any transit router except the owner
        plan.multihomed = true;
        plan.owner2 = t2;
        plan.attach2 = members[rng.NextBounded(members.size())];
      }
      ++stub_domain_id;
    }
  }
  P2P_CHECK(next_router == params.total_routers());
  auto wire_domains = [&](std::size_t begin, std::size_t end) {
    for (std::size_t d = begin; d < end; ++d) {
      for (std::size_t k = plans[d].edge_begin; k < plans[d].edge_end; ++k)
        topo.routers.AddEdgeRaw(intra_edges[k].first, intra_edges[k].second,
                                params.stub_link_ms);
    }
  };
  if (pool != nullptr && kDomains >= 64) {
    pool->ParallelForRange(kDomains, 16, wire_domains);
  } else {
    wire_domains(0, kDomains);
  }
  topo.routers.BumpEdgeCount(intra_edges.size());
  // Attach links touch shared transit-router adjacency lists: applied
  // serially, in the same global domain order (and thus the same per-node
  // adjacency order) as the fully serial generator.
  for (const StubPlan& plan : plans) {
    topo.routers.AddEdge(plan.owner, plan.attach,
                         params.stub_transit_link_ms);
    if (plan.multihomed)
      topo.routers.AddEdge(plan.owner2, plan.attach2,
                           params.stub_transit_link_ms);
  }
  P2P_CHECK_MSG(topo.routers.IsConnected(), "generated topology disconnected");

  // 4. End systems: attach to random stub routers with a 3–8 ms last hop.
  topo.host_router.reserve(params.end_hosts);
  topo.host_last_hop_ms.reserve(params.end_hosts);
  const std::size_t kStub = params.total_stub_routers();
  for (std::size_t h = 0; h < params.end_hosts; ++h) {
    topo.host_router.push_back(kTransit + rng.NextBounded(kStub));
    topo.host_last_hop_ms.push_back(
        rng.Uniform(params.last_hop_min_ms, params.last_hop_max_ms));
  }
  return topo;
}

}  // namespace p2p::net
