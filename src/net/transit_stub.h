// GT-ITM-style two-layer transit-stub topology generator (substitution for
// the GT-ITM tool the paper uses; see DESIGN.md §4).
//
// The paper's configuration (§5.2): 600 routers — 24 transit routers and
// 576 stub routers — with link latencies of 100 ms for intra-transit-domain
// links, 25 ms for stub-transit links and 10 ms for intra-stub-domain links;
// 1200 end systems attached to random stub routers with a 3–8 ms last hop.
// The defaults below produce exactly that shape: 4 transit domains × 6
// transit routers, each transit router owning 3 stub domains of 8 routers
// (24 × 24 = 576 stub routers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/graph.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace p2p::net {

struct TransitStubParams {
  // Router-level structure.
  std::size_t transit_domains = 4;
  std::size_t transit_routers_per_domain = 6;
  std::size_t stub_domains_per_transit_router = 3;
  std::size_t routers_per_stub_domain = 8;

  // Extra-edge probabilities beyond the connectivity backbone (each domain
  // and the inter-domain graph is first wired as a random spanning tree).
  double intra_transit_extra_edge_prob = 0.5;
  double intra_stub_extra_edge_prob = 0.3;

  // Probability that a stub domain is multi-homed: it gets a second
  // stub-transit attach link, from a random member to a random transit
  // router other than its owner. 0 (the paper's shape) draws no RNG, so
  // default topologies are bit-identical to the single-homed generator.
  // Multi-homed domains have two gateway routers, which is what makes the
  // hierarchical latency oracle's gateway-pair minimisation non-trivial.
  double stub_multihome_prob = 0.0;

  // Link latency classes (ms). Inter-transit-domain links use the
  // intra-transit class as well, matching the paper's three-class model.
  double transit_link_ms = 100.0;
  double stub_transit_link_ms = 25.0;
  double stub_link_ms = 10.0;

  // End systems.
  std::size_t end_hosts = 1200;
  double last_hop_min_ms = 3.0;
  double last_hop_max_ms = 8.0;

  std::size_t total_transit_routers() const {
    return transit_domains * transit_routers_per_domain;
  }
  std::size_t total_stub_routers() const {
    return total_transit_routers() * stub_domains_per_transit_router *
           routers_per_stub_domain;
  }
  std::size_t total_routers() const {
    return total_transit_routers() + total_stub_routers();
  }
  std::size_t total_stub_domains() const {
    return total_transit_routers() * stub_domains_per_transit_router;
  }
};

// Scaling presets for full-stack experiments. kPaper1200 is the §5.2
// configuration (600 routers / 1200 hosts); the larger presets grow the
// router substrate sublinearly with the host count and multi-home ~30% of
// stub domains so gateway-pair routing is actually exercised.
enum class TopologyPreset {
  kPaper1200,  //    600 routers,   1200 hosts (paper §5.2, single-homed)
  kHosts10k,   //  4,160 routers,  10000 hosts
  kHosts50k,   //  7,300 routers,  50000 hosts
  kHosts100k,  // 10,512 routers, 100000 hosts
  kHosts250k,  // 16,660 routers, 250000 hosts (stretch)
};

TransitStubParams PresetParams(TopologyPreset preset);

// "1200" | "10k" | "50k" | "100k" | "250k" (throws util::CheckError on
// anything else).
TopologyPreset ParseTopologyPreset(const std::string& name);
const char* TopologyPresetName(TopologyPreset preset);

// Index of an end system (0 .. end_hosts-1); routers use net::NodeIdx.
using HostIdx = std::size_t;

struct TransitStubTopology {
  TransitStubParams params;
  Graph routers;  // router-level graph; transit routers come first

  // Per-router metadata.
  std::vector<bool> is_transit;       // size = total_routers()
  std::vector<std::size_t> domain_of;  // transit-domain or stub-domain index

  // End systems.
  std::vector<NodeIdx> host_router;     // attachment router per host
  std::vector<double> host_last_hop_ms;  // 3–8 ms access delay per host

  std::size_t router_count() const { return routers.node_count(); }
  std::size_t host_count() const { return host_router.size(); }
};

// Generate a topology; deterministic for a given rng state. When `pool` is
// non-null the stub-domain edge materialisation fans out across it; every
// RNG draw happens in a serial planning pass first, so the result is
// byte-identical to the serial path at any thread count.
TransitStubTopology GenerateTransitStub(const TransitStubParams& params,
                                        util::Rng& rng,
                                        util::ThreadPool* pool = nullptr);

}  // namespace p2p::net
