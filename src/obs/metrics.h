// Simulator-wide metrics registry (paper §3.2 framing: the overlay IS the
// monitoring infrastructure — this is the local half every host folds into
// its SOMO report, and the ground truth the in-band view is compared to).
//
// Three metric kinds, all cheap enough for hot paths once the call site has
// cached a handle (one pointer indirection + a double add):
//   * Counter   — monotonically increasing count (messages, repairs).
//   * Gauge     — last-written value (root staleness, queue depth).
//   * Histogram — log-bucketed distribution with p50/p90/p99 estimates
//                 (route hops, gather latency). Buckets are derived from
//                 the exact frexp mantissa, so bucketing is bit-stable
//                 across runs: same samples, same snapshot bytes.
//
// The registry keeps two sections: `metrics` (driven by virtual time and
// the seeded RNG — deterministic, snapshot-comparable across same-seed
// runs) and `profile` (wall-clock ScopeTimer data — excluded from the
// deterministic snapshot by default). Names are free-form dotted paths;
// docs/OBSERVABILITY.md catalogues the convention.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace p2p::obs {

class Counter {
 public:
  void Inc(double d = 1.0) { v_ += d; }
  void Set(double v) { v_ = v; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

class Gauge {
 public:
  void Set(double v) { v_ = v; }
  void Add(double d) { v_ += d; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

// Sparse log-bucketed histogram: kSubBuckets buckets per power of two,
// giving a worst-case quantile error of one bucket width (~9% relative).
// min/max/sum/count are exact.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;

  void Add(double v);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  // Bucket-upper-bound estimate of the p-th percentile (p in [0, 100]),
  // clamped to the exact [min, max] range; 0 when empty.
  double Percentile(double p) const;

  // Fold `other` into this histogram: buckets and counts add, min/max
  // widen, sums add. Equivalent to having recorded both sample streams
  // (the log-bucketing is order-independent, so a merged shard snapshot
  // matches a single-registry run byte for byte).
  void MergeFrom(const Histogram& other);

 private:
  static int BucketOf(double v);
  static double BucketUpper(int b);

  std::map<int, std::uint64_t> buckets_;  // ordered: percentile walk
  std::uint64_t nonpositive_ = 0;         // samples <= 0 (kept out of log buckets)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. References stay valid for the registry's lifetime
  // (node-based storage) — cache them at call sites on hot paths.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }
  // Wall-clock section (ScopeTimer targets): reported separately and
  // excluded from the deterministic snapshot by default.
  Histogram& profile(const std::string& name) { return profile_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, Histogram>& profiles() const { return profile_; }

  // Value of a named counter or gauge (counters shadow gauges), 0.0 when
  // absent — convenient for timeseries probes.
  double Value(const std::string& name) const;

  // All counters then gauges whose names start with `prefix`, each section
  // name-sorted — folds a dotted namespace (e.g. "alm.planner.") into a
  // report or table without enumerating names at the call site.
  std::vector<std::pair<std::string, double>> ValuesWithPrefix(
      const std::string& prefix) const;

  // Deterministic JSON snapshot ("p2pmetrics/v1"): sections sorted, names
  // sorted, numbers rendered by JsonWriter::FormatNumber. Two same-seed
  // runs produce byte-identical output (test-enforced); include_profile
  // adds the wall-clock section and forfeits that guarantee.
  std::string SnapshotJson(bool include_profile = false) const;

  void Reset();

  // Fold a shard registry into this one: counters add, gauges last-writer
  // (the shard's value wins for every gauge it touched), histograms and
  // profiles merge. Used by parallel planning fan-outs that give each
  // session its own shard and combine them after the barrier — merging
  // shards in a fixed order keeps float sums, and therefore snapshots,
  // identical to a sequential run.
  void MergeFrom(const MetricsRegistry& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Histogram> profile_;
};

}  // namespace p2p::obs
