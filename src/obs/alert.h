// Declarative alerting over the observability layer: threshold rules with
// debounce and hysteresis, evaluated deterministically in *virtual* time.
//
// Like TimeseriesSampler, the engine never reads a clock — the caller
// drives Evaluate(now_ms) on whatever cadence it wants (a simulation
// periodic timer, a loop over snapshots), so two same-seed runs evaluate
// the same probe values at the same instants and produce byte-identical
// event logs (test-enforced; the log lands in p2preport/v1 run reports and
// in timeseries CSVs).
//
// A rule's probe is an arbitrary closure, so a rule can watch the local
// MetricsRegistry (see MakeRegistryProbe) or a node's in-band disseminated
// SOMO view alike — the closed monitor→react loop the `alert` experiment
// builds fires ring/tree repair from the latter.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace p2p::obs {

class MetricsRegistry;

struct AlertRule {
  std::string name;
  // Evaluated once per Evaluate(now) call. Must be deterministic for the
  // event log to be.
  std::function<double()> probe;
  double threshold = 0.0;
  // Direction: true fires when probe > threshold, false when < threshold.
  bool fire_above = true;
  // The breach must hold continuously for this long (virtual ms, measured
  // across Evaluate calls) before the rule fires. 0 fires on the first
  // breaching evaluation.
  double debounce_ms = 0.0;
  // Hysteresis: once fired, the rule clears only when the value returns
  // past clear_threshold (NaN = use `threshold`) for clear_ms.
  double clear_threshold = std::numeric_limits<double>::quiet_NaN();
  double clear_ms = 0.0;
};

struct AlertEvent {
  enum Kind : std::uint8_t { kFire = 0, kClear = 1 };
  double time_ms = 0.0;
  std::uint32_t rule = 0;  // index into AlertEngine::rules()
  Kind kind = kFire;
  double value = 0.0;  // probe value at the transition
};

// Probe reading a counter/gauge by name (0.0 when absent) — the
// registry-backed rule flavour.
std::function<double()> MakeRegistryProbe(const MetricsRegistry& registry,
                                          std::string name);

class AlertEngine {
 public:
  // The event log is bounded: the oldest events are dropped (and counted)
  // once `log_capacity` is exceeded, keeping report sizes flat no matter
  // how noisy a run gets.
  explicit AlertEngine(std::size_t log_capacity = 256);

  using Reaction = std::function<void(const AlertEvent&)>;

  // Returns the rule's index (AlertEvent::rule).
  std::size_t AddRule(AlertRule rule);

  // Register a simulation callback run when `rule` fires / clears, after
  // the event is logged. Multiple reactions run in registration order.
  void OnFire(std::size_t rule, Reaction fn);
  void OnClear(std::size_t rule, Reaction fn);

  // Evaluate every rule's probe at virtual time `now_ms` (must not
  // decrease across calls).
  void Evaluate(double now_ms);

  const std::vector<AlertRule>& rules() const { return rules_; }
  // Retained events, oldest first (the newest `log_capacity` transitions).
  const std::vector<AlertEvent>& events() const { return events_; }
  std::size_t dropped_events() const { return dropped_; }
  std::size_t fires() const { return fires_; }
  std::size_t clears() const { return clears_; }
  std::size_t evaluations() const { return evaluations_; }

  bool active(std::size_t rule) const { return state_.at(rule).active; }
  // Probe value seen at the most recent Evaluate (NaN before the first).
  double last_value(std::size_t rule) const { return state_.at(rule).last; }
  // Virtual time of the rule's first fire, or -1 if it never fired — the
  // detection-latency measurement the closed-loop experiments report.
  double first_fired_at(std::size_t rule) const {
    return state_.at(rule).first_fired;
  }
  std::size_t fire_count(std::size_t rule) const {
    return state_.at(rule).fires;
  }

  // Write the retained event log as CSV (time_ms,rule,kind,value);
  // false on I/O error. Deterministic bytes for same-seed runs.
  bool WriteCsv(const std::string& path) const;

 private:
  void Append(AlertEvent ev);

  struct RuleState {
    bool active = false;
    double breach_since = -1.0;  // -1: not currently breaching
    double normal_since = -1.0;  // -1: not currently below clear threshold
    double last = std::numeric_limits<double>::quiet_NaN();
    double first_fired = -1.0;
    std::size_t fires = 0;
  };

  std::size_t capacity_;
  std::vector<AlertRule> rules_;
  std::vector<RuleState> state_;
  std::vector<std::vector<Reaction>> on_fire_;
  std::vector<std::vector<Reaction>> on_clear_;
  std::vector<AlertEvent> events_;
  std::size_t dropped_ = 0;
  std::size_t fires_ = 0;
  std::size_t clears_ = 0;
  std::size_t evaluations_ = 0;
};

}  // namespace p2p::obs
