#include "obs/run_report.h"

#include <cstdio>

#include "obs/json.h"

namespace p2p::obs {

void RunReport::AddConfig(const std::string& key, const std::string& value) {
  config_.emplace_back(key, value);
}

void RunReport::AddConfig(const std::string& key, const char* value) {
  config_.emplace_back(key, std::string(value));
}

void RunReport::AddConfig(const std::string& key, double value) {
  config_.emplace_back(key, JsonWriter::FormatNumber(value));
}

void RunReport::AddConfig(const std::string& key, std::int64_t value) {
  config_.emplace_back(key, std::to_string(value));
}

void RunReport::AddConfig(const std::string& key, bool value) {
  config_.emplace_back(key, value ? "true" : "false");
}

void RunReport::AddResult(const std::string& key, double value) {
  results_.emplace_back(key, value);
}

void RunReport::AddTimeseries(const std::string& name, const std::string& path,
                              std::size_t rows, std::size_t total_rows) {
  timeseries_.push_back(TimeseriesRef{name, path, rows, total_rows});
}

void RunReport::AddAlerts(const std::string& name, const AlertEngine& engine) {
  AlertsRef ref;
  ref.name = name;
  ref.fires = engine.fires();
  ref.clears = engine.clears();
  ref.dropped = engine.dropped_events();
  ref.evaluations = engine.evaluations();
  ref.events.reserve(engine.events().size());
  for (const AlertEvent& ev : engine.events()) {
    ref.events.push_back(AlertEventRef{ev.time_ms,
                                       engine.rules()[ev.rule].name,
                                       ev.kind == AlertEvent::kFire,
                                       ev.value});
  }
  alerts_.push_back(std::move(ref));
}

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kRunReportSchema);
  w.Key("experiment").String(experiment_);
  w.Key("seed").Uint(seed_);
  w.Key("config").BeginObject();
  for (const auto& [k, v] : config_) w.Key(k).String(v);
  w.EndObject();
  w.Key("results").BeginObject();
  for (const auto& [k, v] : results_) w.Key(k).Number(v);
  w.EndObject();
  w.Key("metrics");
  if (metrics_ != nullptr) {
    w.Raw(metrics_->SnapshotJson(include_profile_));
  } else {
    w.Null();
  }
  if (!alerts_.empty()) {
    w.Key("alerts").BeginObject();
    for (const AlertsRef& a : alerts_) {
      w.Key(a.name).BeginObject();
      w.Key("fires").Uint(a.fires);
      w.Key("clears").Uint(a.clears);
      w.Key("dropped").Uint(a.dropped);
      w.Key("evaluations").Uint(a.evaluations);
      w.Key("events").BeginArray();
      for (const AlertEventRef& ev : a.events) {
        w.BeginObject();
        w.Key("t_ms").Number(ev.time_ms);
        w.Key("rule").String(ev.rule);
        w.Key("kind").String(ev.fire ? "fire" : "clear");
        w.Key("value").Number(ev.value);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndObject();
  }
  w.Key("timeseries").BeginArray();
  for (const auto& ts : timeseries_) {
    w.BeginObject();
    w.Key("name").String(ts.name);
    w.Key("path").String(ts.path);
    w.Key("rows").Uint(ts.rows);
    w.Key("total_rows").Uint(ts.total_rows);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

bool RunReport::Write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace p2p::obs
