#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace p2p::obs {

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!items_.empty() && items_.back() > 0) out_ += ',';
  if (!items_.empty()) ++items_.back();
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  items_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  P2P_CHECK(!items_.empty());
  items_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  items_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  P2P_CHECK(!items_.empty());
  items_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  P2P_CHECK_MSG(!items_.empty(), "Key outside an object");
  if (items_.back() > 0) out_ += ',';
  ++items_.back();
  out_ += Escape(k);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  BeforeValue();
  out_ += Escape(v);
  return *this;
}

JsonWriter& JsonWriter::Number(double v) {
  BeforeValue();
  out_ += FormatNumber(v);
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Uint(std::uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

std::string JsonWriter::FormatNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values within the exact-double range print as integers, so
  // counters look like counts, not floats.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace p2p::obs
