// Wall-clock scope profiling: measures real elapsed milliseconds of a
// lexical scope and folds them into a registry *profile* histogram (the
// wall-clock section, excluded from deterministic snapshots — real time is
// never reproducible across runs). Used on the planner and event-loop hot
// paths; cost is two steady_clock reads per scope, so wrap batches, not
// per-item inner loops.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace p2p::obs {

class ScopeTimer {
 public:
  // Null histogram = disabled (zero-cost beyond the branch).
  explicit ScopeTimer(Histogram* h)
      : h_(h), start_(h == nullptr ? Clock::time_point{} : Clock::now()) {}

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

  ~ScopeTimer() {
    if (h_ == nullptr) return;
    const auto dt = Clock::now() - start_;
    h_->Add(std::chrono::duration<double, std::milli>(dt).count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* h_;
  Clock::time_point start_;
};

}  // namespace p2p::obs
