#include "obs/alert.h"

#include <cstdio>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace p2p::obs {

std::function<double()> MakeRegistryProbe(const MetricsRegistry& registry,
                                          std::string name) {
  return [reg = &registry, name = std::move(name)] { return reg->Value(name); };
}

AlertEngine::AlertEngine(std::size_t log_capacity) : capacity_(log_capacity) {
  P2P_CHECK(capacity_ > 0);
}

std::size_t AlertEngine::AddRule(AlertRule rule) {
  P2P_CHECK_MSG(rule.probe != nullptr, "alert rule needs a probe");
  P2P_CHECK_MSG(!rule.name.empty(), "alert rule needs a name");
  rules_.push_back(std::move(rule));
  state_.emplace_back();
  on_fire_.emplace_back();
  on_clear_.emplace_back();
  return rules_.size() - 1;
}

void AlertEngine::OnFire(std::size_t rule, Reaction fn) {
  on_fire_.at(rule).push_back(std::move(fn));
}

void AlertEngine::OnClear(std::size_t rule, Reaction fn) {
  on_clear_.at(rule).push_back(std::move(fn));
}

void AlertEngine::Append(AlertEvent ev) {
  if (events_.size() == capacity_) {
    events_.erase(events_.begin());
    ++dropped_;
  }
  events_.push_back(ev);
}

void AlertEngine::Evaluate(double now_ms) {
  ++evaluations_;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& r = rules_[i];
    RuleState& s = state_[i];
    const double v = r.probe();
    s.last = v;
    const bool breach = r.fire_above ? v > r.threshold : v < r.threshold;
    const double clear_thr =
        std::isnan(r.clear_threshold) ? r.threshold : r.clear_threshold;
    const bool normal = r.fire_above ? v <= clear_thr : v >= clear_thr;
    if (!s.active) {
      s.normal_since = -1.0;
      if (!breach) {
        s.breach_since = -1.0;
        continue;
      }
      if (s.breach_since < 0.0) s.breach_since = now_ms;
      if (now_ms - s.breach_since < r.debounce_ms) continue;
      s.active = true;
      s.breach_since = -1.0;
      ++s.fires;
      ++fires_;
      if (s.first_fired < 0.0) s.first_fired = now_ms;
      const AlertEvent ev{now_ms, static_cast<std::uint32_t>(i),
                          AlertEvent::kFire, v};
      Append(ev);
      for (const auto& fn : on_fire_[i]) fn(ev);
    } else {
      s.breach_since = -1.0;
      if (!normal) {
        s.normal_since = -1.0;
        continue;
      }
      if (s.normal_since < 0.0) s.normal_since = now_ms;
      if (now_ms - s.normal_since < r.clear_ms) continue;
      s.active = false;
      s.normal_since = -1.0;
      ++clears_;
      const AlertEvent ev{now_ms, static_cast<std::uint32_t>(i),
                          AlertEvent::kClear, v};
      Append(ev);
      for (const auto& fn : on_clear_[i]) fn(ev);
    }
  }
}

bool AlertEngine::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fputs("time_ms,rule,kind,value\n", f) >= 0;
  for (const AlertEvent& ev : events_) {
    const std::string row =
        JsonWriter::FormatNumber(ev.time_ms) + "," + rules_[ev.rule].name +
        "," + (ev.kind == AlertEvent::kFire ? "fire" : "clear") + "," +
        JsonWriter::FormatNumber(ev.value) + "\n";
    ok = ok && std::fwrite(row.data(), 1, row.size(), f) == row.size();
  }
  return std::fclose(f) == 0 && ok;
}

}  // namespace p2p::obs
