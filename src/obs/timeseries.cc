#include "obs/timeseries.h"

#include "obs/json.h"
#include "util/check.h"

namespace p2p::obs {

TimeseriesSampler::TimeseriesSampler(std::size_t capacity)
    : capacity_(capacity) {
  P2P_CHECK(capacity_ > 0);
}

std::size_t TimeseriesSampler::AddProbe(std::string name, Probe probe) {
  P2P_CHECK_MSG(total_ == 0, "probes must be registered before sampling");
  P2P_CHECK(probe != nullptr);
  names_.push_back(std::move(name));
  probes_.push_back(std::move(probe));
  return names_.size() - 1;
}

void TimeseriesSampler::Sample(double time_ms) {
  Row row;
  row.time_ms = time_ms;
  row.values.reserve(probes_.size());
  for (const Probe& p : probes_) row.values.push_back(p());
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(row));
  } else {
    ring_[total_ % capacity_] = std::move(row);
  }
  ++total_;
}

std::vector<TimeseriesSampler::Row> TimeseriesSampler::Snapshot() const {
  std::vector<Row> out;
  out.reserve(ring_.size());
  const std::size_t start = total_ > capacity_ ? total_ % capacity_ : 0;
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

bool TimeseriesSampler::WriteCsv(std::FILE* f) const {
  if (f == nullptr) return false;
  std::fputs("time_ms", f);
  for (const std::string& n : names_) std::fprintf(f, ",%s", n.c_str());
  std::fputc('\n', f);
  for (const Row& row : Snapshot()) {
    std::fputs(JsonWriter::FormatNumber(row.time_ms).c_str(), f);
    for (const double v : row.values)
      std::fprintf(f, ",%s", JsonWriter::FormatNumber(v).c_str());
    std::fputc('\n', f);
  }
  return std::ferror(f) == 0;
}

bool TimeseriesSampler::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = WriteCsv(f);
  return std::fclose(f) == 0 && ok;
}

}  // namespace p2p::obs
