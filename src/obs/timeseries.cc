#include "obs/timeseries.h"

#include "obs/json.h"
#include "util/check.h"

namespace p2p::obs {

TimeseriesSampler::TimeseriesSampler(std::size_t capacity, FillPolicy policy)
    : capacity_(capacity), policy_(policy) {
  P2P_CHECK(capacity_ > 0);
  P2P_CHECK_MSG(policy_ == FillPolicy::kRing || capacity_ >= 2,
                "decimation needs capacity >= 2");
}

std::size_t TimeseriesSampler::AddProbe(std::string name, Probe probe) {
  P2P_CHECK_MSG(total_ == 0, "probes must be registered before sampling");
  P2P_CHECK(probe != nullptr);
  names_.push_back(std::move(name));
  probes_.push_back(std::move(probe));
  return names_.size() - 1;
}

void TimeseriesSampler::Sample(double time_ms) {
  if (policy_ == FillPolicy::kDecimate) {
    // Halve before testing the stride so the stride check below always
    // runs against the post-halving stride: kept rows are exactly the
    // Sample() calls at multiples of the final stride, uniformly spaced.
    if (ring_.size() == capacity_) HalveResolution();
    const bool keep = total_ % stride_ == 0;
    ++total_;
    if (!keep) return;  // decimated out: probes aren't even evaluated
  } else {
    ++total_;
  }
  Row row;
  row.time_ms = time_ms;
  row.values.reserve(probes_.size());
  for (const Probe& p : probes_) row.values.push_back(p());
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(row));
  } else {
    // kRing (a full kDecimate buffer was halved above).
    ring_[(total_ - 1) % capacity_] = std::move(row);
  }
}

void TimeseriesSampler::HalveResolution() {
  const std::size_t kept = (ring_.size() + 1) / 2;
  for (std::size_t j = 1; j < kept; ++j) ring_[j] = std::move(ring_[2 * j]);
  ring_.resize(kept);
  stride_ *= 2;
}

std::vector<TimeseriesSampler::Row> TimeseriesSampler::Snapshot() const {
  std::vector<Row> out;
  out.reserve(ring_.size());
  // kDecimate never wraps: rows sit in insertion order from index 0.
  const std::size_t start =
      policy_ == FillPolicy::kRing && total_ > capacity_ ? total_ % capacity_
                                                         : 0;
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

bool TimeseriesSampler::WriteCsv(std::FILE* f) const {
  if (f == nullptr) return false;
  std::fputs("time_ms", f);
  for (const std::string& n : names_) std::fprintf(f, ",%s", n.c_str());
  std::fputc('\n', f);
  for (const Row& row : Snapshot()) {
    std::fputs(JsonWriter::FormatNumber(row.time_ms).c_str(), f);
    for (const double v : row.values)
      std::fprintf(f, ",%s", JsonWriter::FormatNumber(v).c_str());
    std::fputc('\n', f);
  }
  return std::ferror(f) == 0;
}

bool TimeseriesSampler::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = WriteCsv(f);
  return std::fclose(f) == 0 && ok;
}

}  // namespace p2p::obs
