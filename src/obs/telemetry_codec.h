// Wire primitives for compressed in-band telemetry (paper §3.2: "the leaf
// SOMO report is 40 bytes"). The schema binding — which fields a SOMO
// record carries and in what order — lives next to the schema itself
// (somo/report.h: EncodeAggregate/DecodeAggregate); this header provides
// the generic, layer-agnostic pieces:
//
//   * LEB128 varints and zigzag-mapped signed varints (delta-encoded
//     counters and index chains),
//   * a 16-bit minifloat (1 sign / 6 exponent / 9 mantissa, bias 31) for
//     bandwidth, capacity and coordinate components — relative error
//     bounded by kF16RelError, range up to ~4.3e9,
//   * timestamp quantization to kAgeTickMs ticks (absolute error bounded
//     by kAgeTickMs).
//
// Encoders are templated over a Sink so the exact byte cost of an encoding
// can be computed without materialising it (WireCounter), guaranteeing
// EncodedSize == Encode().size() structurally rather than by convention.
// Everything here is pure data → bytes: deterministic by construction.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace p2p::obs {

// --- zigzag ---------------------------------------------------------------

inline std::uint64_t ZigzagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t ZigzagDecode(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

// --- 16-bit minifloat -----------------------------------------------------

// Worst-case relative rounding error of EncodeF16/DecodeF16 for values in
// the normal range [2^-30, ~4.3e9): half a mantissa step.
inline constexpr double kF16RelError = 1.0 / 1024.0;

// Encode a double into the 1/6/9 minifloat. Values below the smallest
// normal (2^-30) flush to (signed) zero; values beyond the largest finite
// (~4.29e9) saturate to infinity; NaN is preserved.
std::uint16_t EncodeF16(double v);
double DecodeF16(std::uint16_t bits);

// --- timestamp quantization -----------------------------------------------

// Virtual-time tick for quantized ages/timestamps. 16 ms keeps a whole
// simulated day in a 3-byte varint while staying far below every protocol
// period in the repo (heartbeat 1 s, SOMO 1–5 s).
inline constexpr double kAgeTickMs = 16.0;

// Round-to-nearest tick count; negative times clamp to 0.
inline std::uint64_t QuantizeTicks(double ms) {
  if (!(ms > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(ms / kAgeTickMs));
}

inline double TicksToMs(std::uint64_t ticks) {
  return static_cast<double>(ticks) * kAgeTickMs;
}

// --- sinks ----------------------------------------------------------------

// Byte-materialising sink.
class WireWriter {
 public:
  void Byte(std::uint8_t b) { out_.push_back(b); }
  void Varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void Zigzag(std::int64_t v) { Varint(ZigzagEncode(v)); }
  void F16(double v) {
    const std::uint16_t b = EncodeF16(v);
    out_.push_back(static_cast<std::uint8_t>(b & 0xff));
    out_.push_back(static_cast<std::uint8_t>(b >> 8));
  }

  std::size_t size() const { return out_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return out_; }
  std::vector<std::uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

// Size-only sink: same call surface as WireWriter, counts bytes without
// allocating. Feeding the same values to both sinks yields the same size —
// that is the EncodedSize contract.
class WireCounter {
 public:
  void Byte(std::uint8_t) { ++n_; }
  void Varint(std::uint64_t v) {
    ++n_;
    while (v >= 0x80) {
      ++n_;
      v >>= 7;
    }
  }
  void Zigzag(std::int64_t v) { Varint(ZigzagEncode(v)); }
  void F16(double) { n_ += 2; }

  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
};

// --- reader ---------------------------------------------------------------

// Bounds-checked reader over an encoded buffer. Any over-read or malformed
// varint latches ok() to false and makes every subsequent read return 0 —
// decoders check ok() once at the end instead of after every field.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t Byte() {
    if (pos_ >= size_) {
      ok_ = false;
      return 0;
    }
    return data_[pos_++];
  }

  std::uint64_t Varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_ || shift >= 64) {
        ok_ = false;
        return 0;
      }
      const std::uint8_t b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::int64_t Zigzag() { return ZigzagDecode(Varint()); }

  double F16() {
    const std::uint8_t lo = Byte();
    const std::uint8_t hi = Byte();
    return DecodeF16(static_cast<std::uint16_t>(lo) |
                     (static_cast<std::uint16_t>(hi) << 8));
  }

  bool ok() const { return ok_; }
  std::size_t consumed() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace p2p::obs
