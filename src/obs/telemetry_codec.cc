#include "obs/telemetry_codec.h"

#include <limits>

namespace p2p::obs {

namespace {

constexpr int kExpBits = 6;
constexpr int kManBits = 9;
constexpr int kBias = 31;
constexpr int kExpMax = (1 << kExpBits) - 1;  // 63: inf/nan
constexpr std::uint16_t kManMask = (1 << kManBits) - 1;

}  // namespace

std::uint16_t EncodeF16(double v) {
  std::uint16_t sign = 0;
  if (std::signbit(v)) {
    sign = 1u << (kExpBits + kManBits);
    v = -v;
  }
  if (std::isnan(v)) return static_cast<std::uint16_t>(sign | (kExpMax << kManBits) | kManMask);
  if (std::isinf(v)) return static_cast<std::uint16_t>(sign | (kExpMax << kManBits));
  if (v == 0.0) return sign;
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  // Field exponent for v = (1+f) * 2^(e-1): e - 1 + bias.
  int exp = e - 1 + kBias;
  // Round the mantissa to kManBits fractional bits of (2m - 1) in [1, 2).
  std::uint32_t man =
      static_cast<std::uint32_t>(std::llround((2.0 * m - 1.0) * (1 << kManBits)));
  if (man == (1u << kManBits)) {  // rounded up to 2.0: carry into exponent
    man = 0;
    ++exp;
  }
  if (exp >= kExpMax) return static_cast<std::uint16_t>(sign | (kExpMax << kManBits));
  if (exp < 1) return sign;  // below smallest normal: flush to zero
  return static_cast<std::uint16_t>(sign | (exp << kManBits) | man);
}

double DecodeF16(std::uint16_t bits) {
  const bool neg = (bits >> (kExpBits + kManBits)) & 1;
  const int exp = (bits >> kManBits) & kExpMax;
  const std::uint16_t man = bits & kManMask;
  double v;
  if (exp == 0) {
    v = 0.0;
  } else if (exp == kExpMax) {
    v = man == 0 ? std::numeric_limits<double>::infinity()
                 : std::numeric_limits<double>::quiet_NaN();
  } else {
    v = std::ldexp(1.0 + static_cast<double>(man) / (1 << kManBits),
                   exp - kBias);
  }
  return neg ? -v : v;
}

}  // namespace p2p::obs
