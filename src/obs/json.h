// Minimal streaming JSON writer for the observability layer: metric
// snapshots, run reports, and timeseries exports. Deliberately tiny — no
// DOM, no parsing — and deterministic: the same sequence of calls always
// yields the same bytes, which is what lets same-seed runs produce
// byte-identical snapshots (a test-enforced property).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace p2p::obs {

class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Object key; must be followed by exactly one value (or container).
  JsonWriter& Key(std::string_view k);

  JsonWriter& String(std::string_view v);
  JsonWriter& Number(double v);
  JsonWriter& Int(std::int64_t v);
  JsonWriter& Uint(std::uint64_t v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();
  // Splice an already-serialized JSON value (e.g. a registry snapshot).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

  // Shortest stable rendering: integral doubles print without a fraction,
  // everything else as %.17g (round-trip exact). Non-finite values become
  // null — JSON has no spelling for them.
  static std::string FormatNumber(double v);
  static std::string Escape(std::string_view s);

 private:
  void BeforeValue();

  std::string out_;
  // One frame per open container: count of values emitted at that level.
  std::vector<std::size_t> items_;
  bool after_key_ = false;
};

}  // namespace p2p::obs
