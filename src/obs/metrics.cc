#include "obs/metrics.h"

#include <cmath>

#include "obs/json.h"

namespace p2p::obs {

void Histogram::Add(double v) {
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
  if (!(v > 0.0)) {
    ++nonpositive_;
    return;
  }
  ++buckets_[BucketOf(v)];
}

int Histogram::BucketOf(double v) {
  int e = 0;
  const double m = std::frexp(v, &e);  // m in [0.5, 1): exact
  int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  if (sub < 0) sub = 0;
  return e * kSubBuckets + sub;
}

double Histogram::BucketUpper(int b) {
  // Floor division so negative exponents (values < 0.5) bucket correctly.
  int e = b / kSubBuckets;
  int sub = b - e * kSubBuckets;
  if (sub < 0) {
    sub += kSubBuckets;
    --e;
  }
  return std::ldexp(0.5 + static_cast<double>(sub + 1) /
                              (2.0 * kSubBuckets),
                    e);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t cum = nonpositive_;
  // All non-positive samples sit below every log bucket; their
  // representative is the exact minimum.
  if (cum >= target) return min_;
  for (const auto& [b, n] : buckets_) {
    cum += n;
    if (cum >= target) {
      const double upper = BucketUpper(b);
      if (upper < min_) return min_;
      if (upper > max_) return max_;
      return upper;
    }
  }
  return max_;
}

void Histogram::MergeFrom(const Histogram& other) {
  for (const auto& [b, n] : other.buckets_) buckets_[b] += n;
  nonpositive_ += other.nonpositive_;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].Inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].Set(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_[name].MergeFrom(h);
  }
  for (const auto& [name, h] : other.profile_) {
    profile_[name].MergeFrom(h);
  }
}

double MetricsRegistry::Value(const std::string& name) const {
  const auto c = counters_.find(name);
  if (c != counters_.end()) return c->second.value();
  const auto g = gauges_.find(name);
  if (g != gauges_.end()) return g->second.value();
  return 0.0;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::ValuesWithPrefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, double>> out;
  const auto starts_with = [&](const std::string& name) {
    return name.compare(0, prefix.size(), prefix) == 0;
  };
  // Ordered maps: walk from lower_bound until the prefix stops matching.
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && starts_with(it->first); ++it)
    out.emplace_back(it->first, it->second.value());
  for (auto it = gauges_.lower_bound(prefix);
       it != gauges_.end() && starts_with(it->first); ++it)
    out.emplace_back(it->first, it->second.value());
  return out;
}

namespace {

void WriteHistogram(JsonWriter& w, const Histogram& h) {
  w.BeginObject();
  w.Key("count").Uint(h.count());
  if (!h.empty()) {
    w.Key("min").Number(h.min());
    w.Key("max").Number(h.max());
    w.Key("mean").Number(h.mean());
    w.Key("sum").Number(h.sum());
    w.Key("p50").Number(h.Percentile(50));
    w.Key("p90").Number(h.Percentile(90));
    w.Key("p99").Number(h.Percentile(99));
  }
  w.EndObject();
}

void WriteHistogramSection(JsonWriter& w, const char* key,
                           const std::map<std::string, Histogram>& hs) {
  w.Key(key).BeginObject();
  for (const auto& [name, h] : hs) {
    w.Key(name);
    WriteHistogram(w, h);
  }
  w.EndObject();
}

}  // namespace

std::string MetricsRegistry::SnapshotJson(bool include_profile) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("p2pmetrics/v1");
  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) w.Key(name).Number(c.value());
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) w.Key(name).Number(g.value());
  w.EndObject();
  WriteHistogramSection(w, "histograms", histograms_);
  if (include_profile) WriteHistogramSection(w, "profile", profile_);
  w.EndObject();
  return w.Take();
}

void MetricsRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  profile_.clear();
}

}  // namespace p2p::obs
