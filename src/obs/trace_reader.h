// Shared parser for "p2ptrace" dumps (TraceSink::WriteText): one
// implementation serving the CLI, the tests, and tools/trace_to_csv
// instead of three private copies of the v1 format. Reads both versions:
//   v1: time src dst protocol kind bytes dropped
//   v2: ... + drop-cause column (sim::DropCause as a digit)
// Only header types from sim/trace.h are used, so this stays a leaf
// library (p2p_obs) with no link dependency on p2p_sim.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace p2p::obs {

struct TraceFile {
  int version = 0;          // 1 or 2
  std::size_t held = 0;     // records the header promised
  std::size_t total = 0;    // records ever appended to the sink
  std::vector<sim::TraceRecord> records;

  // The sink's ring overwrote the oldest records before the dump.
  bool truncated() const { return total > held; }
};

// Reverse of sim::ProtocolName. Returns false for unknown names.
bool ParseProtocol(const std::string& name, sim::Protocol* out);

// Parse a full dump. On failure returns false and, when `error` is
// non-null, stores a one-line reason. A record-count mismatch versus the
// header is an error; use TraceFile::truncated() for ring overwrites.
bool ReadTrace(std::FILE* f, TraceFile* out, std::string* error = nullptr);
bool ReadTraceFile(const std::string& path, TraceFile* out,
                   std::string* error = nullptr);

}  // namespace p2p::obs
