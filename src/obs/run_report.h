// Structured run reports: every CLI experiment ends by emitting one
// `run_report.json` — the experiment name, its effective configuration,
// its headline result numbers, a metrics-registry snapshot, and pointers
// to any timeseries CSVs it wrote. Reports follow the "p2preport/v1"
// schema (tools/report_schema.json; validated by tools/validate_report.py
// via `tools/run_tests.sh --report`), so runs can be diffed and regressed
// across PRs instead of comparing eyeballed stdout tables.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/alert.h"
#include "obs/metrics.h"

namespace p2p::obs {

inline constexpr const char* kRunReportSchema = "p2preport/v1";

class RunReport {
 public:
  explicit RunReport(std::string experiment) : experiment_(std::move(experiment)) {}

  void set_seed(std::uint64_t seed) { seed_ = seed; }

  // Effective configuration, insertion-ordered. All values stringified —
  // the schema keeps config opaque; results carry the numbers.
  void AddConfig(const std::string& key, const std::string& value);
  void AddConfig(const std::string& key, const char* value);
  void AddConfig(const std::string& key, double value);
  void AddConfig(const std::string& key, std::int64_t value);
  void AddConfig(const std::string& key, bool value);

  // Headline scalar results (the numbers the stdout table prints).
  void AddResult(const std::string& key, double value);

  // Attach the registry whose snapshot the report embeds (not owned; must
  // outlive Write/ToJson). include_profile adds the wall-clock section.
  void AttachMetrics(const MetricsRegistry* registry,
                     bool include_profile = true) {
    metrics_ = registry;
    include_profile_ = include_profile;
  }

  // Reference a timeseries CSV written alongside the report.
  void AddTimeseries(const std::string& name, const std::string& path,
                     std::size_t rows, std::size_t total_rows);

  // Snapshot an alert engine's bounded event log into the report's
  // "alerts" section under `name` (one entry per engine — experiments with
  // several scenario runs snapshot each). Copies at call time, so the
  // engine need not outlive the report.
  void AddAlerts(const std::string& name, const AlertEngine& engine);

  std::string ToJson() const;
  // Write ToJson() to `path` (plus a trailing newline); false on I/O error.
  bool Write(const std::string& path) const;

 private:
  std::string experiment_;
  std::uint64_t seed_ = 0;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, double>> results_;
  struct TimeseriesRef {
    std::string name;
    std::string path;
    std::size_t rows = 0;
    std::size_t total_rows = 0;
  };
  std::vector<TimeseriesRef> timeseries_;
  struct AlertEventRef {
    double time_ms = 0.0;
    std::string rule;
    bool fire = true;
    double value = 0.0;
  };
  struct AlertsRef {
    std::string name;
    std::size_t fires = 0;
    std::size_t clears = 0;
    std::size_t dropped = 0;
    std::size_t evaluations = 0;
    std::vector<AlertEventRef> events;
  };
  std::vector<AlertsRef> alerts_;
  const MetricsRegistry* metrics_ = nullptr;
  bool include_profile_ = true;
};

}  // namespace p2p::obs
