// Virtual-time timeseries sampling: experiments register named probes
// (closures reading a metric, a gauge, a protocol accessor) and call
// Sample(sim.now()) on a simulated-clock cadence — typically from a
// Simulation::Every timer. Rows land in a bounded ring (oldest overwritten,
// total kept, mirroring TraceSink) and export to CSV/JSON, so runs produce
// staleness-over-time and load-over-time curves instead of end-state
// numbers only.
//
// The sampler has no clock and no scheduler of its own: the caller supplies
// virtual time, which keeps this layer deterministic and reusable outside a
// Simulation (offline experiments sample per sweep instead of per tick).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace p2p::obs {

class TimeseriesSampler {
 public:
  using Probe = std::function<double()>;

  explicit TimeseriesSampler(std::size_t capacity = 4096);

  // Register a column before the first Sample(); name becomes the CSV
  // header. Returns the column index.
  std::size_t AddProbe(std::string name, Probe probe);

  // Evaluate every probe at virtual time `time_ms` and append one row.
  void Sample(double time_ms);

  std::size_t probe_count() const { return names_.size(); }
  const std::vector<std::string>& probe_names() const { return names_; }
  std::size_t capacity() const { return capacity_; }
  // Rows currently held (<= capacity).
  std::size_t rows() const { return ring_.size(); }
  // Rows ever sampled; > rows() means the oldest were overwritten.
  std::size_t total_rows() const { return total_; }

  struct Row {
    double time_ms = 0.0;
    std::vector<double> values;
  };
  // Held rows, oldest first.
  std::vector<Row> Snapshot() const;

  // CSV: "time_ms,<probe>..." header then one row per sample, numbers
  // rendered by JsonWriter::FormatNumber (deterministic bytes).
  bool WriteCsv(std::FILE* f) const;
  bool WriteCsv(const std::string& path) const;

 private:
  std::size_t capacity_;
  std::vector<std::string> names_;
  std::vector<Probe> probes_;
  std::vector<Row> ring_;
  std::size_t total_ = 0;
};

}  // namespace p2p::obs
