// Virtual-time timeseries sampling: experiments register named probes
// (closures reading a metric, a gauge, a protocol accessor) and call
// Sample(sim.now()) on a simulated-clock cadence — typically from a
// Simulation::Every timer. Rows land in a bounded ring (oldest overwritten,
// total kept, mirroring TraceSink) and export to CSV/JSON, so runs produce
// staleness-over-time and load-over-time curves instead of end-state
// numbers only.
//
// The sampler has no clock and no scheduler of its own: the caller supplies
// virtual time, which keeps this layer deterministic and reusable outside a
// Simulation (offline experiments sample per sweep instead of per tick).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace p2p::obs {

// What to do when the row buffer fills.
enum class FillPolicy {
  // Overwrite the oldest row (trace-ring behaviour): full-resolution
  // recent history, the run's start falls off.
  kRing,
  // Halve the time resolution instead: drop every other held row, double
  // the sampling stride, keep going. The buffer always spans the whole
  // run, at a power-of-two stride that grows with run length — long runs
  // keep their start-up transient AND their tail. Purely arithmetic
  // (stride counters, no RNG), so same-seed runs decimate identically.
  kDecimate,
};

class TimeseriesSampler {
 public:
  using Probe = std::function<double()>;

  explicit TimeseriesSampler(std::size_t capacity = 4096,
                             FillPolicy policy = FillPolicy::kRing);

  // Register a column before the first Sample(); name becomes the CSV
  // header. Returns the column index.
  std::size_t AddProbe(std::string name, Probe probe);

  // Evaluate every probe at virtual time `time_ms` and append one row.
  void Sample(double time_ms);

  std::size_t probe_count() const { return names_.size(); }
  const std::vector<std::string>& probe_names() const { return names_; }
  std::size_t capacity() const { return capacity_; }
  FillPolicy fill_policy() const { return policy_; }
  // Rows currently held (<= capacity).
  std::size_t rows() const { return ring_.size(); }
  // Sample() calls so far; > rows() means rows were overwritten (kRing) or
  // decimated away (kDecimate).
  std::size_t total_rows() const { return total_; }
  // Current sampling stride (kDecimate: every stride-th Sample() call is
  // kept; always 1 under kRing).
  std::size_t stride() const { return stride_; }

  struct Row {
    double time_ms = 0.0;
    std::vector<double> values;
  };
  // Held rows, oldest first.
  std::vector<Row> Snapshot() const;

  // CSV: "time_ms,<probe>..." header then one row per sample, numbers
  // rendered by JsonWriter::FormatNumber (deterministic bytes).
  bool WriteCsv(std::FILE* f) const;
  bool WriteCsv(const std::string& path) const;

 private:
  // Drop every other held row and double the stride (kDecimate).
  void HalveResolution();

  std::size_t capacity_;
  FillPolicy policy_;
  std::vector<std::string> names_;
  std::vector<Probe> probes_;
  std::vector<Row> ring_;
  std::size_t total_ = 0;
  std::size_t stride_ = 1;
};

}  // namespace p2p::obs
