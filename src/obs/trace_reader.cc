#include "obs/trace_reader.h"

#include <cstring>

namespace p2p::obs {

bool ParseProtocol(const std::string& name, sim::Protocol* out) {
  for (std::size_t i = 0; i < sim::kProtocolCount; ++i) {
    const auto p = static_cast<sim::Protocol>(i);
    if (name == sim::ProtocolName(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

namespace {

bool Fail(std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

bool ReadTrace(std::FILE* f, TraceFile* out, std::string* error) {
  if (f == nullptr) return Fail(error, "null input stream");
  *out = TraceFile{};
  char line[512];
  if (std::fgets(line, sizeof line, f) == nullptr)
    return Fail(error, "empty input");
  if (std::sscanf(line, "p2ptrace v%d %zu %zu", &out->version, &out->held,
                  &out->total) != 3 ||
      (out->version != 1 && out->version != 2)) {
    return Fail(error, "not a p2ptrace v1/v2 file");
  }
  out->records.reserve(out->held);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    sim::TraceRecord r;
    char proto[64];
    unsigned kind = 0;
    int dropped = 0;
    unsigned cause = 0;
    const int fields =
        std::sscanf(line, "%lf %zu %zu %63s %u %zu %d %u", &r.time_ms,
                    &r.src_host, &r.dst_host, proto, &kind, &r.bytes,
                    &dropped, &cause);
    const int expected = out->version >= 2 ? 8 : 7;
    if (fields != expected) return Fail(error, "malformed record line");
    if (!ParseProtocol(proto, &r.protocol))
      return Fail(error, "unknown protocol name");
    if (cause > static_cast<unsigned>(sim::DropCause::kPartition))
      return Fail(error, "unknown drop cause");
    r.kind = static_cast<std::uint16_t>(kind);
    r.dropped = dropped != 0;
    r.cause = static_cast<sim::DropCause>(cause);
    out->records.push_back(r);
  }
  if (std::ferror(f) != 0) return Fail(error, "read error");
  if (out->records.size() != out->held)
    return Fail(error, "record count does not match header");
  return true;
}

bool ReadTraceFile(const std::string& path, TraceFile* out,
                   std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Fail(error, "cannot open input");
  const bool ok = ReadTrace(f, out, error);
  std::fclose(f);
  return ok;
}

}  // namespace p2p::obs
