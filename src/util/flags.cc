#include "util/flags.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace p2p::util {
namespace {

bool LooksLikeFlag(const std::string& s) {
  return s.size() > 2 && s.rfind("--", 0) == 0;
}

}  // namespace

FlagParser::FlagParser(int argc, const char* const* argv) {
  P2P_CHECK(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --name value (value must not itself look like a flag) or a bare
    // boolean switch.
    if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name, std::string def,
                                  const std::string& help) {
  registered_[name] = {def, help};
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t FlagParser::GetInt(const std::string& name, std::int64_t def,
                                const std::string& help) {
  registered_[name] = {std::to_string(def), help};
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  try {
    return std::stoll(it->second);
  } catch (...) {
    throw CheckError("flag --" + name + " expects an integer, got '" +
                     it->second + "'");
  }
}

double FlagParser::GetDouble(const std::string& name, double def,
                             const std::string& help) {
  registered_[name] = {std::to_string(def), help};
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  try {
    return std::stod(it->second);
  } catch (...) {
    throw CheckError("flag --" + name + " expects a number, got '" +
                     it->second + "'");
  }
}

bool FlagParser::GetBool(const std::string& name, bool def,
                         const std::string& help) {
  registered_[name] = {def ? "true" : "false", help};
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on")
    return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw CheckError("flag --" + name + " expects a boolean, got '" +
                   it->second + "'");
}

std::vector<std::string> FlagParser::UnknownFlags() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!registered_.count(name)) unknown.push_back(name);
  }
  return unknown;
}

std::string FlagParser::Help() const {
  std::ostringstream os;
  os << "flags:\n";
  for (const auto& [name, reg] : registered_) {
    os << "  --" << name << " (default: " << reg.default_value << ")";
    if (!reg.help.empty()) os << "  " << reg.help;
    os << "\n";
  }
  return os.str();
}

}  // namespace p2p::util
