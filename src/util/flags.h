// Minimal command-line parsing for the CLI tool and bench binaries.
// Supports --name=value and --name value forms, boolean switches, typed
// getters with defaults, positional arguments, and an auto-assembled help
// text from the registrations actually made.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace p2p::util {

class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  // Typed getters; each call registers the flag (for Help/unknown-flag
  // detection) and returns the parsed value or the default.
  std::string GetString(const std::string& name, std::string def,
                        const std::string& help = "");
  std::int64_t GetInt(const std::string& name, std::int64_t def,
                      const std::string& help = "");
  double GetDouble(const std::string& name, double def,
                   const std::string& help = "");
  // True when present without value or with value in {1,true,yes,on};
  // false for {0,false,no,off}.
  bool GetBool(const std::string& name, bool def,
               const std::string& help = "");

  bool Has(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  // Flags supplied on the command line but never registered by a getter.
  std::vector<std::string> UnknownFlags() const;

  // Usage text assembled from the registrations (name, default, help).
  std::string Help() const;

 private:
  struct Registration {
    std::string default_value;
    std::string help;
  };

  std::string program_;
  std::map<std::string, std::string> values_;  // name -> raw value
  std::vector<std::string> positional_;
  std::map<std::string, Registration> registered_;
};

}  // namespace p2p::util
