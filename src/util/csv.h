// Minimal CSV/table writer: bench binaries print the same series the paper
// plots, both as aligned text tables (human-readable) and optionally as CSV
// files for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace p2p::util {

// Create `dir` (and any missing parents) if it does not exist. Returns
// false when creation fails or the path exists but is not a directory —
// callers writing CSVs there fail up front with a clear error instead of
// one fopen failure per file.
bool EnsureDir(const std::string& dir);

class Table {
 public:
  using Cell = std::variant<std::string, double, long long>;

  explicit Table(std::vector<std::string> header);

  Table& AddRow(std::vector<Cell> row);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }

  // Aligned, human-readable rendering (doubles with `precision` digits).
  std::string ToText(int precision = 3) const;
  std::string ToCsv(int precision = 6) const;

  // Convenience: write CSV to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path, int precision = 6) const;

 private:
  static std::string Format(const Cell& c, int precision);

  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace p2p::util
