// Minimal CSV/table writer: bench binaries print the same series the paper
// plots, both as aligned text tables (human-readable) and optionally as CSV
// files for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace p2p::util {

class Table {
 public:
  using Cell = std::variant<std::string, double, long long>;

  explicit Table(std::vector<std::string> header);

  Table& AddRow(std::vector<Cell> row);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }

  // Aligned, human-readable rendering (doubles with `precision` digits).
  std::string ToText(int precision = 3) const;
  std::string ToCsv(int precision = 6) const;

  // Convenience: write CSV to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path, int precision = 6) const;

 private:
  static std::string Format(const Cell& c, int precision);

  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace p2p::util
