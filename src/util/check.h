// Lightweight runtime-check macros (P.6/P.7 of the C++ Core Guidelines:
// what cannot be checked at compile time should be checkable at run time,
// and run-time errors should be caught early).
//
// P2P_CHECK is always on (it guards simulation invariants whose violation
// would silently corrupt results); P2P_DCHECK compiles out in NDEBUG builds
// and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace p2p::util {

// Thrown by P2P_CHECK failures so tests can assert on invariant violations
// instead of the process aborting.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed at " << file << ":" << line << ": " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace p2p::util

#define P2P_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::p2p::util::detail::CheckFail(__FILE__, __LINE__, #expr, "");        \
  } while (0)

#define P2P_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream p2p_check_os_;                                     \
      p2p_check_os_ << msg;                                                 \
      ::p2p::util::detail::CheckFail(__FILE__, __LINE__, #expr,             \
                                     p2p_check_os_.str());                  \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define P2P_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define P2P_DCHECK(expr) P2P_CHECK(expr)
#endif
