#include "util/thread_pool.h"

#include <algorithm>

namespace p2p::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    futures.push_back(Submit([i, &fn] { fn(i); }));
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::ParallelForRange(
    std::size_t n, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  min_chunk = std::max<std::size_t>(1, min_chunk);
  const std::size_t max_chunks = 4 * thread_count();
  const std::size_t chunks =
      std::clamp<std::size_t>((n + min_chunk - 1) / min_chunk, 1, max_chunks);
  if (chunks == 1) {
    fn(0, n);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    futures.push_back(Submit([begin, end, &fn] { fn(begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace p2p::util
