// Deterministic pseudo-random number generation.
//
// Every simulation run owns one Rng seeded from the run id, so experiment
// results are reproducible bit-for-bit regardless of how many runs execute
// concurrently on the thread pool. Xoshiro256** is used as the core engine
// (fast, 256-bit state, passes BigCrush); SplitMix64 seeds it and derives
// independent substreams.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <vector>

#include "util/check.h"

namespace p2p::util {

// SplitMix64 step: used for seeding and cheap stateless hashing.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless 64-bit mix of a single value (for hashing ids into the DHT space).
constexpr std::uint64_t Mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return SplitMix64(s);
}

// xoshiro256** by Blackman & Vigna (public domain reference implementation).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = SplitMix64(sm);
  }

  // A derived, statistically independent stream (e.g. one per simulated run).
  Rng Substream(std::uint64_t stream_id) const {
    std::uint64_t sm = state_[0] ^ Mix64(stream_id ^ 0xa0761d6478bd642fULL);
    return Rng(SplitMix64(sm));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    P2P_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, n). Lemire's unbiased bounded generation.
  std::uint64_t NextBounded(std::uint64_t n) {
    P2P_DCHECK(n > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    P2P_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Standard normal via Box–Muller (no state caching: simplicity over speed).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    while (u1 <= 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  double Exponential(double rate) {
    P2P_DCHECK(rate > 0);
    double u = NextDouble();
    while (u <= 0.0) u = NextDouble();
    return -std::log(u) / rate;
  }

  // Fisher–Yates shuffle.
  template <typename Container>
  void Shuffle(Container& c) {
    const std::size_t n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = NextBounded(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  // Sample k distinct indices from [0, n) (reservoir when k << n not needed;
  // partial Fisher–Yates over an index vector is fine at our scales).
  std::vector<std::size_t> SampleIndices(std::size_t n, std::size_t k) {
    P2P_CHECK(k <= n);
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + NextBounded(n - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace p2p::util
