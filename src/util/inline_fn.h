// Small-buffer `void()` callable: the event kernel's replacement for
// std::function callback storage.
//
// Every simulated event used to carry a std::function<void()>; libstdc++'s
// 16-byte small-object buffer is too small for the typical protocol
// closure ([this, from, to, send_time] is already 32 bytes), so nearly
// every Schedule() heap-allocated. InlineFn stores captures up to
// kInlineBytes (48) in place — covering every periodic timer and delivery
// closure in the protocol stack — and falls back to the heap only for
// larger payloads (SOMO aggregate pushes that capture whole reports).
//
// Move-only by design: the event queue is the single owner of a pending
// callback, so the copy constructor std::function drags in (and the
// copyability requirement it imposes on captures) is dead weight.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace p2p::util {

class InlineFn {
 public:
  // Chosen to fit a `this` pointer plus five word-sized captures — measured
  // over the protocol stack's timer and delivery closures (see
  // docs/KERNEL.md). Raising it grows every pending event; lowering it
  // sends hot-path closures to the heap.
  static constexpr std::size_t kInlineBytes = 48;
  // Word alignment, not max_align_t: protocol closures capture pointers,
  // doubles, and ints. Keeping the buffer at 8 makes the whole object
  // 56 bytes, which lets an event-slab record (InlineFn + period) occupy
  // exactly one cache line. Over-aligned captures fall back to the heap.
  static constexpr std::size_t kInlineAlign = alignof(void*);

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= kInlineAlign) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { MoveFrom(std::move(other)); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  InlineFn& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    P2P_CHECK_MSG(ops_ != nullptr, "invoking an empty InlineFn");
    ops_->invoke(buf_);
  }

  // True when the callable lives in the inline buffer (no allocation).
  bool stored_inline() const { return ops_ != nullptr && ops_->inline_stored; }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    // Move-construct into dst from src, then destroy src. Null for
    // trivially copyable inline captures — the owner memcpys the buffer
    // instead of paying an indirect call per move (the kernel moves every
    // callback once, into the event slab, on the Schedule hot path).
    void (*relocate)(void* dst, void* src);
    // Null when destruction is a no-op — the slab recycles millions of
    // fired one-shots, and nearly every protocol closure captures only
    // trivial values.
    void (*destroy)(void* obj);
    bool inline_stored;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* obj) { (*std::launder(reinterpret_cast<D*>(obj)))(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* dst, void* src) {
              D* s = std::launder(reinterpret_cast<D*>(src));
              ::new (dst) D(std::move(*s));
              s->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* obj) { std::launder(reinterpret_cast<D*>(obj))->~D(); },
      true};

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* obj) { (**std::launder(reinterpret_cast<D**>(obj)))(); },
      [](void* dst, void* src) {
        D** s = std::launder(reinterpret_cast<D**>(src));
        ::new (dst) D*(*s);
      },
      [](void* obj) { delete *std::launder(reinterpret_cast<D**>(obj)); },
      false};

  void MoveFrom(InlineFn&& other) {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate != nullptr) {
        other.ops_->relocate(buf_, other.buf_);
      } else {
        // Trivially copyable inline capture: the whole buffer copy beats
        // an indirect call, and the moved-from bytes need no destruction.
        std::memcpy(buf_, other.buf_, kInlineBytes);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace p2p::util
