// Fixed-bin histogram, used for ASCII plots in the bench harnesses and for
// coarse distribution assertions in tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/check.h"

namespace p2p::util {

class Histogram {
 public:
  // [lo, hi) split into `bins` equal bins; out-of-range samples land in the
  // under/overflow counters.
  Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
    P2P_CHECK(hi > lo);
    P2P_CHECK(bins > 0);
    counts_.assign(bins, 0);
  }

  void Add(double x) {
    ++total_;
    if (x < lo_) {
      ++underflow_;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      return;
    }
    const auto bin = static_cast<std::size_t>(
        (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
    ++counts_[bin < counts_.size() ? bin : counts_.size() - 1];
  }

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  double bin_lo(std::size_t bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                     static_cast<double>(counts_.size());
  }
  double bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

  // Fraction of in-range samples at or below the upper edge of `bin`.
  double CumulativeFraction(std::size_t bin) const {
    std::size_t c = underflow_;
    for (std::size_t i = 0; i <= bin && i < counts_.size(); ++i)
      c += counts_[i];
    return total_ ? static_cast<double>(c) / static_cast<double>(total_) : 0.0;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace p2p::util
