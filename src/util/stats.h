// Streaming and batch statistics used by every experiment harness.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace p2p::util {

// Welford online accumulator: numerically stable mean/variance without
// storing samples.
class Accumulator {
 public:
  void Add(double x);
  void Merge(const Accumulator& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Batch helpers (copy + sort internally where order statistics are needed).
double Mean(std::span<const double> xs);
double StdDev(std::span<const double> xs);
double Median(std::span<const double> xs);
// Linear-interpolated percentile, p in [0, 100].
double Percentile(std::span<const double> xs, double p);

// Empirical CDF over a sample: Points() yields (x, F(x)) pairs at each
// distinct sample value; Eval(x) is the fraction of samples <= x.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  double Eval(double x) const;
  // Inverse CDF / quantile, q in [0, 1].
  double Quantile(double q) const;
  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace p2p::util
