#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace p2p::util {

void Accumulator::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Mean(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.Add(x);
  return acc.mean();
}

double StdDev(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.Add(x);
  return acc.stddev();
}

double Percentile(std::span<const double> xs, double p) {
  P2P_CHECK(!xs.empty());
  P2P_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Median(std::span<const double> xs) { return Percentile(xs, 50.0); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  P2P_CHECK(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::Eval(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  P2P_CHECK(q >= 0.0 && q <= 1.0);
  return Percentile(sorted_, q * 100.0);
}

}  // namespace p2p::util
