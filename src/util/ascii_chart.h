// Terminal line charts for the bench harnesses: render one or more (x, y)
// series onto a character grid, with automatic axis ranges and a legend.
// Purely cosmetic — the tables remain the canonical output — but a CDF is
// far easier to eyeball as a curve.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"

namespace p2p::util {

struct ChartSeries {
  std::string name;
  std::vector<std::pair<double, double>> points;  // (x, y)
};

struct ChartOptions {
  std::size_t width = 64;   // plot columns (excluding axis labels)
  std::size_t height = 16;  // plot rows
  // Fixed ranges; NaN = auto from the data.
  double y_min = std::numeric_limits<double>::quiet_NaN();
  double y_max = std::numeric_limits<double>::quiet_NaN();
};

// Marker characters assigned to series in order.
inline constexpr char kChartMarkers[] = {'*', 'o', '+', 'x', '#', '@'};

inline std::string RenderAsciiChart(const std::vector<ChartSeries>& series,
                                    const ChartOptions& options = {}) {
  P2P_CHECK(!series.empty());
  P2P_CHECK(options.width >= 8 && options.height >= 4);

  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -std::numeric_limits<double>::infinity();
  double y_lo = std::numeric_limits<double>::infinity();
  double y_hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
      y_lo = std::min(y_lo, y);
      y_hi = std::max(y_hi, y);
    }
  }
  P2P_CHECK_MSG(x_lo <= x_hi, "chart has no points");
  if (!std::isnan(options.y_min)) y_lo = options.y_min;
  if (!std::isnan(options.y_max)) y_hi = options.y_max;
  if (x_hi == x_lo) x_hi = x_lo + 1.0;
  if (y_hi == y_lo) y_hi = y_lo + 1.0;

  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  auto to_col = [&](double x) {
    const double f = (x - x_lo) / (x_hi - x_lo);
    return std::min(options.width - 1,
                    static_cast<std::size_t>(
                        f * static_cast<double>(options.width - 1) + 0.5));
  };
  auto to_row = [&](double y) {
    const double f = (y - y_lo) / (y_hi - y_lo);
    const double clamped = std::clamp(f, 0.0, 1.0);
    return options.height - 1 -
           std::min(options.height - 1,
                    static_cast<std::size_t>(
                        clamped * static_cast<double>(options.height - 1) +
                        0.5));
  };

  // Draw in reverse registration order so the FIRST series wins contested
  // cells (it is usually the reference curve).
  for (std::size_t si = series.size(); si-- > 0;) {
    const char mark =
        kChartMarkers[si % (sizeof(kChartMarkers) / sizeof(char))];
    for (const auto& [x, y] : series[si].points)
      grid[to_row(y)][to_col(x)] = mark;
  }

  std::ostringstream os;
  auto label = [](double v) {
    std::ostringstream ls;
    ls.precision(3);
    ls << v;
    std::string s = ls.str();
    if (s.size() < 8) s = std::string(8 - s.size(), ' ') + s;
    return s;
  };
  for (std::size_t r = 0; r < options.height; ++r) {
    if (r == 0) {
      os << label(y_hi);
    } else if (r == options.height - 1) {
      os << label(y_lo);
    } else {
      os << std::string(8, ' ');
    }
    os << " |" << grid[r] << "\n";
  }
  os << std::string(8, ' ') << " +" << std::string(options.width, '-')
     << "\n";
  os << std::string(10, ' ') << label(x_lo) << std::string(
         options.width > 24 ? options.width - 16 : 1, ' ')
     << label(x_hi) << "\n";
  os << std::string(10, ' ');
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << kChartMarkers[si % (sizeof(kChartMarkers) / sizeof(char))] << "="
       << series[si].name << "  ";
  }
  os << "\n";
  return os.str();
}

}  // namespace p2p::util
