// Fixed-size work-stealing-free thread pool.
//
// Used by bench harnesses to farm out independent simulation runs (each run
// owns its own Rng substream, so results are deterministic under any thread
// schedule). Follows CP.4 of the Core Guidelines: callers think in tasks,
// not threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace p2p::util {

class ThreadPool {
 public:
  // `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Enqueue a task; the future resolves with the task's result (or its
  // exception).
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Run fn(i) for i in [0, n) across the pool and wait for all to finish.
  // Exceptions propagate (the first one encountered is rethrown).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Chunked variant for fine-grained items: partitions [0, n) into
  // contiguous ranges of at least `min_chunk` indices (at most ~4 chunks
  // per worker) and runs fn(begin, end) per range. One future per chunk
  // instead of per index — use when fn(i) is too cheap to pay a task
  // submission each. The partition depends only on n, min_chunk and the
  // pool width, never on scheduling, so independent per-index work stays
  // deterministic.
  void ParallelForRange(
      std::size_t n, std::size_t min_chunk,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace p2p::util
