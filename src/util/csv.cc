#include "util/csv.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <system_error>

#include "util/check.h"

namespace p2p::util {

bool EnsureDir(const std::string& dir) {
  if (dir.empty()) return false;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  return std::filesystem::is_directory(dir, ec);
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  P2P_CHECK(!header_.empty());
}

Table& Table::AddRow(std::vector<Cell> row) {
  P2P_CHECK_MSG(row.size() == header_.size(),
                "row width " << row.size() << " != header width "
                             << header_.size());
  rows_.push_back(std::move(row));
  return *this;
}

std::string Table::Format(const Cell& c, int precision) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  std::ostringstream os;
  if (const auto* d = std::get_if<double>(&c)) {
    os << std::fixed << std::setprecision(precision) << *d;
  } else {
    os << std::get<long long>(c);
  }
  return os.str();
}

std::string Table::ToText(int precision) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i)
    widths[i] = header_[i].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(Format(row[i], precision));
      widths[i] = std::max(widths[i], r.back().size());
    }
    cells.push_back(std::move(r));
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << std::setw(static_cast<int>(widths[i])) << r[i];
      os << (i + 1 == r.size() ? "\n" : "  ");
    }
  };
  emit_row(header_);
  for (const auto& r : cells) emit_row(r);
  return os.str();
}

std::string Table::ToCsv(int precision) const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i)
      os << r[i] << (i + 1 == r.size() ? "\n" : ",");
  };
  emit(header_);
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const auto& c : row) r.push_back(Format(c, precision));
    emit(r);
  }
  return os.str();
}

bool Table::WriteCsv(const std::string& path, int precision) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToCsv(precision);
  return static_cast<bool>(out);
}

}  // namespace p2p::util
