// Dynamic membership: a long-running session where participants come and
// go. Joins attach under the best feasible parent (recruiting a pool
// helper when the parent is about to fill); leaves re-home the departed
// node's children and prune helpers that no longer serve anyone.
//
//   $ ./dynamic_session
#include <cstdio>
#include <vector>

#include "alm/critical.h"
#include "alm/dynamic.h"
#include "pool/resource_pool.h"

int main() {
  using namespace p2p;
  std::printf("building the pool ...\n");
  pool::PoolConfig cfg;
  cfg.seed = 99;
  cfg.build_bandwidth_estimates = false;
  pool::ResourcePool rp(cfg);

  // Plan an initial 10-member session with helpers.
  util::Rng rng(4);
  const auto idx = rng.SampleIndices(rp.size(), 10);
  alm::PlanInput in;
  in.degree_bounds = rp.degree_bounds();
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  std::vector<char> is_member(rp.size(), 0);
  for (const auto v : idx) is_member[v] = 1;
  std::vector<std::size_t> pool_nodes;
  for (std::size_t v = 0; v < rp.size(); ++v) {
    if (!is_member[v] && rp.degree_bound(v) >= 4) {
      in.helper_candidates.push_back(v);
      pool_nodes.push_back(v);
    }
  }
  in.true_latency = rp.TrueLatencyFn();
  in.estimated_latency = rp.EstimatedLatencyFn();
  auto plan = PlanSession(in, alm::Strategy::kLeafsetAdjust);

  std::vector<alm::ParticipantId> helpers;
  for (const auto v : plan.tree.members()) {
    if (!is_member[v]) helpers.push_back(v);
  }
  alm::DynamicSessionOptions dopts;
  dopts.amcast = in.amcast;
  dopts.amcast.selection = alm::HelperSelection::kMinimaxHeuristic;
  alm::DynamicSession session(std::move(plan.tree), rp.degree_bounds(),
                              helpers, rp.TrueLatencyFn(), dopts);

  auto report = [&](const char* what) {
    std::printf("%-28s size=%2zu  helpers=%zu  height=%6.1f ms\n", what,
                session.tree().size(), session.helpers_in_tree(),
                session.Height());
  };
  report("initial plan:");

  // Fifteen newcomers trickle in.
  std::size_t next = 0;
  std::vector<alm::ParticipantId> joined;
  for (int i = 0; i < 15; ++i) {
    while (session.tree().Contains(pool_nodes[next])) ++next;
    const auto v = pool_nodes[next++];
    // Candidate helpers: pool nodes not already used.
    std::vector<alm::ParticipantId> candidates;
    for (const auto c : pool_nodes) {
      if (!session.tree().Contains(c) && c != v) candidates.push_back(c);
    }
    if (session.Join(v, candidates)) joined.push_back(v);
  }
  report("after 15 joins:");
  std::printf("  helpers recruited during joins: %zu\n",
              session.helpers_recruited());

  // Ten of them leave again.
  int left = 0;
  for (const auto v : joined) {
    if (left >= 10) break;
    if (session.tree().Contains(v) && session.Leave(v)) ++left;
  }
  report("after 10 leaves:");
  std::printf("  childless helpers pruned: %zu\n",
              session.helpers_pruned());

  // The tree stays valid and degree-bounded throughout (checked in debug
  // builds after every adjustment; assert once more here).
  session.tree().Validate(rp.degree_bounds());
  std::printf("final tree validated: OK\n");
  return 0;
}
