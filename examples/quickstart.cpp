// Quickstart: build a paper-sized P2P resource pool, schedule one ALM
// session through the public facade, inspect the plan, and release it.
//
//   $ ./quickstart
//
// Walks through the whole stack: transit-stub network + latency oracle,
// DHT ring, leafset network coordinates, packet-pair bandwidth estimates,
// degree registry, and the Leafset+adjust planner with helper recruitment.
#include <cstdio>
#include <vector>

#include "core/pool_api.h"

int main() {
  using namespace p2p;

  // 1. Assemble the pool (paper configuration: 600 routers, 1200 end
  //    systems, leafset 32). Takes around a second.
  std::printf("building the resource pool ...\n");
  PoolOptions options;
  options.config.seed = 2026;
  Pool pool(options);
  std::printf("pool ready: %zu end systems\n\n", pool.size());

  // 2. Inspect a node the way a task manager would see it via SOMO.
  const auto& res = pool.resources();
  const std::size_t probe = 42;
  std::printf("node %zu: degree bound %d, est. uplink %.0f kbps, "
              "est. downlink %.0f kbps\n",
              probe, res.degree_bound(probe),
              res.bandwidth_estimates().estimate(probe).up_kbps,
              res.bandwidth_estimates().estimate(probe).down_kbps);
  std::printf("latency 42 -> 77: true %.1f ms, coordinate estimate %.1f "
              "ms\n\n",
              res.TrueLatency(42, 77), res.EstimatedLatency(42, 77));

  // 3. Schedule a 20-member video-conference-sized session at the highest
  //    priority. The task manager plans with Leafset+adjust, recruiting
  //    helper nodes from the pool, and reserves degrees in the registry.
  std::vector<std::size_t> members;
  for (std::size_t i = 1; i < 20; ++i) members.push_back(i * 61 % pool.size());
  const auto id = pool.CreateSession(/*root=*/7, members, /*priority=*/1);

  const auto& session = pool.session(id);
  std::printf("session scheduled:\n");
  std::printf("  tree height        : %.1f ms\n", session.current_height());
  std::printf("  helper nodes used  : %zu\n", session.current_helpers());
  std::printf("  improvement vs AMCast (members only): %.1f %%\n",
              100.0 * pool.SessionImprovement(id));

  // 4. Print the tree.
  const auto* tree = session.current_tree();
  std::printf("\nmulticast tree (root %zu):\n", tree->root());
  std::vector<std::pair<std::size_t, int>> stack{{tree->root(), 0}};
  while (!stack.empty()) {
    const auto [v, depth] = stack.back();
    stack.pop_back();
    const bool is_member = v == tree->root() ||
                           std::count(members.begin(), members.end(), v) > 0;
    std::printf("  %*s%zu%s\n", depth * 2, "", v,
                is_member ? "" : "  [helper]");
    for (const auto c : tree->children(v))
      stack.push_back({c, depth + 1});
  }

  // 5. Tear down: every reserved degree goes back to the pool.
  pool.EndSession(id);
  std::printf("\nsession ended; registry drained (%zu degrees in use)\n",
              pool.resources().registry().TotalUsed());
  return 0;
}
