// Figure 1 demo: an optimal degree-bounded plan over session members only,
// versus the better plan that splices an otherwise-idle high-degree helper
// from the resource pool ("the square node") next to the bottleneck.
//
//   $ ./helper_tree
//
// Prints both trees and their heights so the structural difference is
// visible, then repeats the comparison on the full simulated pool.
#include <cstdio>
#include <vector>

#include "alm/adjust.h"
#include "alm/bounds.h"
#include "alm/critical.h"
#include "pool/resource_pool.h"

namespace {

using namespace p2p;

void PrintTree(const alm::MulticastTree& tree,
               const std::vector<char>& is_member,
               const alm::LatencyFn& latency) {
  const auto heights = tree.ComputeHeights(latency);
  std::vector<std::pair<std::size_t, int>> stack{{tree.root(), 0}};
  while (!stack.empty()) {
    const auto [v, depth] = stack.back();
    stack.pop_back();
    std::printf("  %*s%c%zu  (height %.0f ms)\n", depth * 2, "",
                is_member[v] ? 'o' : '#', v, heights[v]);
    for (const auto c : tree.children(v)) stack.push_back({c, depth + 1});
  }
}

// The hand-crafted Figure-1 scenario: five members 100 ms from the root
// and 50 ms apart, with degree 2 each; one idle helper 60 ms from the
// root and 10 ms from every member, with degree 6.
void FigureOneScenario() {
  std::printf("--- Figure 1, hand-crafted scenario ---\n");
  std::printf("circles (o) are session members, # is the pool helper\n\n");
  alm::AmcastInput in;
  in.degree_bounds = {2, 2, 2, 2, 2, 6};
  in.root = 0;
  in.members = {1, 2, 3, 4};
  auto latency = [](alm::ParticipantId a, alm::ParticipantId b) -> double {
    if (a == b) return 0.0;
    if (a > b) std::swap(a, b);
    if (b == 5) return a == 0 ? 60.0 : 10.0;
    if (a == 0) return 100.0;
    return 50.0;
  };
  std::vector<char> is_member{1, 1, 1, 1, 1, 0};

  const auto plain = BuildAmcastTree(in, latency);
  std::printf("(a) members only — height %.0f ms:\n", plain.height);
  PrintTree(plain.tree, is_member, latency);

  in.helper_candidates = {5};
  alm::AmcastOptions opt;
  opt.selection = alm::HelperSelection::kMinimaxHeuristic;
  const auto helped = BuildAmcastTree(in, latency, opt);
  std::printf("\n(b) with the pool helper — height %.0f ms:\n",
              helped.height);
  PrintTree(helped.tree, is_member, latency);
  std::printf("\n");
}

// The same comparison on the full simulated pool.
void PoolScenario() {
  std::printf("--- the same effect on the 1200-host simulated pool ---\n");
  pool::PoolConfig cfg;
  cfg.seed = 77;
  cfg.build_coordinates = false;  // Critical (oracle) planning only
  cfg.build_bandwidth_estimates = false;
  pool::ResourcePool rp(cfg);

  util::Rng rng(5);
  const auto idx = rng.SampleIndices(rp.size(), 12);
  alm::PlanInput in;
  in.degree_bounds = rp.degree_bounds();
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  std::vector<char> is_member(rp.size(), 0);
  for (const auto v : idx) is_member[v] = 1;
  for (std::size_t v = 0; v < rp.size(); ++v) {
    if (!is_member[v] && rp.degree_bound(v) >= 4)
      in.helper_candidates.push_back(v);
  }
  in.true_latency = rp.TrueLatencyFn();

  const auto base = PlanSession(in, alm::Strategy::kAmcastAdjust);
  const auto helped = PlanSession(in, alm::Strategy::kCriticalAdjust);
  std::printf("members-only (AMCast+adjust): height %.1f ms\n",
              base.height_true);
  std::printf("with pool helpers (Critical+adjust): height %.1f ms, "
              "%zu helpers\n",
              helped.height_true, helped.helpers_used);
  std::printf("improvement: %.1f %%\n",
              100.0 * alm::Improvement(base.height_true,
                                       helped.height_true));
  std::printf("\nhelped tree:\n");
  PrintTree(helped.tree, is_member, in.true_latency);
}

}  // namespace

int main() {
  FigureOneScenario();
  PoolScenario();
  return 0;
}
