// LiquidEye (§3.2): a SOMO-based global performance monitor. A hundred
// machines heartbeat their leafsets; SOMO gathers per-machine stats
// (simulated CPU load + the measured bandwidth estimates) to the root
// every 5 seconds; we "unplug the cable" of a few machines and watch the
// global view regenerate.
//
//   $ ./liquideye
#include <cstdio>
#include <vector>

#include "bwest/estimator.h"
#include "dht/heartbeat.h"
#include "net/bandwidth_model.h"
#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "sim/simulation.h"
#include "somo/somo.h"

int main() {
  using namespace p2p;
  constexpr std::size_t kMachines = 100;

  // The monitored machines, the network between them, their access links.
  net::TransitStubParams params;
  params.end_hosts = kMachines;
  util::Rng topo_rng(11);
  const auto topo = net::GenerateTransitStub(params, topo_rng);
  const net::LatencyOracle oracle(topo);
  util::Rng bw_rng(12);
  const net::BandwidthModel bandwidths(net::GnutellaAccessClasses(),
                                       kMachines, bw_rng);

  sim::Simulation sim(13);
  dht::Ring ring(16, &oracle);
  for (std::size_t h = 0; h < kMachines; ++h) ring.JoinHashed(h);
  ring.StabilizeAll();

  // Heartbeats carry the measurement protocols.
  dht::HeartbeatConfig hcfg;
  hcfg.period_ms = 1000.0;
  hcfg.timeout_ms = 3500.0;
  dht::HeartbeatProtocol hb(sim, ring, hcfg);
  util::Rng probe_rng(14);
  bwest::BandwidthEstimator bw(ring, bandwidths, bwest::PacketPairOptions{},
                               probe_rng);
  bw.AttachTo(hb);

  // Per-machine "performance counters": a synthetic CPU load.
  util::Rng load_rng(15);
  std::vector<double> cpu_load(kMachines);
  for (auto& l : cpu_load) l = load_rng.Uniform(0.05, 0.95);

  somo::SomoConfig scfg;
  scfg.fanout = 8;
  scfg.report_interval_ms = 5000.0;  // the paper's 5 s reporting cycle
  somo::SomoProtocol somo(sim, ring, scfg, [&](dht::NodeIndex n) {
    somo::NodeReport r;
    r.node = n;
    r.host = ring.node(n).host();
    r.generated_at = sim.now();
    r.up_kbps = bw.estimate(n).up_samples ? bw.estimate(n).up_kbps : 0.0;
    r.down_kbps =
        bw.estimate(n).down_samples ? bw.estimate(n).down_kbps : 0.0;
    r.degrees.total = static_cast<int>(100.0 * (1.0 - cpu_load[n]));
    return r;
  });
  hb.AddFailureObserver([&](dht::NodeIndex detector, dht::NodeIndex dead,
                            sim::Time when) {
    std::printf("[%7.1f s] node %zu detected the failure of node %zu — "
                "SOMO self-repairs\n",
                when / 1000.0, detector, dead);
    somo.Rebuild();
  });

  hb.Start();
  somo.Start();

  auto print_view = [&] {
    const auto& view = somo.RootReport();
    double total_up = 0.0;
    for (std::size_t i = 0; i < view.size(); ++i) total_up += view.up_kbps(i);
    std::printf("[%7.1f s] global view: %zu machines, staleness %.1f s, "
                "aggregate uplink %.1f Mbps (SOMO depth %zu)\n",
                sim.now() / 1000.0, view.size(),
                somo.RootStalenessMs() / 1000.0, total_up / 1000.0,
                somo.tree().depth());
  };

  std::printf("monitoring %zu machines, 5 s reporting cycle ...\n\n",
              kMachines);
  for (int tick = 1; tick <= 6; ++tick) {
    sim.RunUntil(tick * 10000.0);
    print_view();
  }

  std::printf("\n'unplugging' machines 17, 42 and 85 ...\n");
  ring.Fail(17);
  ring.Fail(42);
  ring.Fail(85);
  const double failed_at = sim.now();
  while (sim.now() < failed_at + 60000.0) {
    sim.RunUntil(sim.now() + 5000.0);
    print_view();
    if (somo.RootViewComplete() && somo.RootReport().size() ==
                                       kMachines - 3) {
      std::printf("\nglobal view regenerated %.1f s after the failures "
                  "(%zu survivors all present)\n",
                  (sim.now() - failed_at) / 1000.0,
                  somo.RootReport().size());
      break;
    }
  }
  return 0;
}
