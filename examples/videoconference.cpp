// The paper's motivating scenario (§2.1): a company with thousands of
// geographically distributed machines runs a handful of concurrent
// video-conference sessions. Each session is small (< 20 participants),
// QoS-sensitive, and competes for the idle machines purely by priority —
// no global scheduler.
//
//   $ ./videoconference
//
// Shows sessions arriving, the market resolving contention by preemption,
// a session ending and the survivors picking up the freed helpers.
#include <cstdio>
#include <vector>

#include "core/pool_api.h"

namespace {

using namespace p2p;

void Report(Pool& pool, const std::vector<alm::SessionId>& ids) {
  std::printf("  %-10s %-8s %-10s %-8s %s\n", "session", "priority",
              "height", "helpers", "improvement");
  for (const auto id : ids) {
    const auto& s = pool.session(id);
    std::printf("  %-10lld %-8d %-10.1f %-8zu %.1f %%\n",
                static_cast<long long>(id), s.spec().priority,
                s.current_height(), s.current_helpers(),
                100.0 * pool.SessionImprovement(id));
  }
  std::printf("  pool degrees in use: %zu / %zu\n\n",
              pool.resources().registry().TotalUsed(),
              pool.resources().registry().TotalCapacity());
}

}  // namespace

int main() {
  using namespace p2p;
  std::printf("building the corporate resource pool (1200 machines) ...\n");
  PoolOptions options;
  options.config.seed = 404;
  Pool pool(options);

  // Three conferences with disjoint participant sets: the weekly all-hands
  // (priority 1), a team sync (priority 2), and a casual chat (priority 3).
  auto members_of = [&](std::size_t block) {
    std::vector<std::size_t> m;
    for (std::size_t k = 1; k < 16; ++k) m.push_back(block * 16 + k);
    return m;
  };

  std::printf("\n>>> the all-hands starts (priority 1)\n");
  const auto all_hands = pool.CreateSession(0, members_of(0), 1);
  Report(pool, {all_hands});

  std::printf(">>> a team sync starts (priority 2)\n");
  const auto team_sync = pool.CreateSession(16, members_of(1), 2);
  Report(pool, {all_hands, team_sync});

  std::printf(">>> a casual chat starts (priority 3)\n");
  const auto chat = pool.CreateSession(32, members_of(2), 3);
  Report(pool, {all_hands, team_sync, chat});

  std::printf(">>> five more team syncs pile on (priority 2)\n");
  std::vector<alm::SessionId> extra;
  for (std::size_t b = 3; b < 8; ++b)
    extra.push_back(pool.CreateSession(b * 16, members_of(b), 2));
  std::vector<alm::SessionId> everyone{all_hands, team_sync, chat};
  everyone.insert(everyone.end(), extra.begin(), extra.end());
  Report(pool, everyone);

  std::printf(">>> the all-hands ends; the market re-runs and survivors "
              "pick up the freed helpers\n");
  pool.EndSession(all_hands);
  pool.RunMarketSweep();
  everyone.erase(everyone.begin());
  Report(pool, everyone);

  for (const auto id : everyone) pool.EndSession(id);
  std::printf("all sessions ended; %zu degrees in use\n",
              pool.resources().registry().TotalUsed());
  return 0;
}
