// Figure 4: CDF of relative latency-prediction error — original GNP with
// 16/32 landmarks vs the leafset-based variant with leafset size 16/32,
// over 1200 end systems on the paper's transit-stub topology.
//
// Expected shape (paper §4.1): the leafset variant with leafset 32 tracks
// GNP with 16 landmarks closely; GNP is less sensitive to its parameter
// than the leafset variant is to leafset size.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "coord/gnp.h"
#include "util/ascii_chart.h"
#include "coord/leafset_coords.h"
#include "dht/ring.h"
#include "net/latency_oracle.h"
#include "net/transit_stub.h"

namespace p2p {
namespace {

constexpr std::size_t kPairSamples = 8000;

std::vector<double> GnpErrors(const net::LatencyOracle& oracle,
                              std::size_t landmarks, std::uint64_t seed) {
  std::vector<net::HostIdx> hosts(oracle.host_count());
  for (std::size_t i = 0; i < hosts.size(); ++i) hosts[i] = i;
  util::Rng rng(seed);
  coord::GnpOptions opt;
  opt.landmark_count = landmarks;
  coord::GnpSystem gnp(oracle, hosts, opt, rng);
  gnp.Solve();
  util::Rng prng(seed ^ 0x1234);
  std::vector<double> errs;
  errs.reserve(kPairSamples);
  while (errs.size() < kPairSamples) {
    const auto a = prng.NextBounded(hosts.size());
    const auto b = prng.NextBounded(hosts.size());
    if (a == b) continue;
    errs.push_back(
        coord::RelativeError(gnp.Predict(a, b), gnp.Measured(a, b)));
  }
  return errs;
}

std::vector<double> LeafsetErrors(const net::LatencyOracle& oracle,
                                  std::size_t leafset_size,
                                  std::uint64_t seed) {
  dht::Ring ring(leafset_size, &oracle);
  for (net::HostIdx h = 0; h < oracle.host_count(); ++h) ring.JoinHashed(h);
  ring.StabilizeAll();
  coord::LeafsetCoordOptions opt;
  opt.nm.max_iterations = 120;
  util::Rng rng(seed);
  coord::LeafsetCoordSystem cs(ring, opt, rng);
  cs.RunRounds(8);
  util::Rng prng(seed ^ 0x5678);
  std::vector<double> errs;
  errs.reserve(kPairSamples);
  while (errs.size() < kPairSamples) {
    const auto a = prng.NextBounded(oracle.host_count());
    const auto b = prng.NextBounded(oracle.host_count());
    if (a == b) continue;
    errs.push_back(coord::RelativeError(cs.Predict(a, b),
                                        oracle.Latency(a, b)));
  }
  return errs;
}

}  // namespace
}  // namespace p2p

int main(int argc, char** argv) {
  using namespace p2p;
  bench::CsvSink csv(argc, argv);
  bench::PrintHeader("Figure 4 — network-coordinate accuracy (CDF)",
                     "Fig. 4: GNP vs leafset variant, 1200 GT-ITM nodes");

  util::Rng topo_rng(2026);
  const auto topo =
      net::GenerateTransitStub(net::TransitStubParams{}, topo_rng);
  util::ThreadPool threads;
  const net::LatencyOracle oracle(topo, &threads);

  std::map<std::string, std::vector<double>> series;
  series["GNP-16"] = GnpErrors(oracle, 16, 11);
  series["GNP-32"] = GnpErrors(oracle, 32, 12);
  series["Leafset-16"] = LeafsetErrors(oracle, 16, 13);
  series["Leafset-32"] = LeafsetErrors(oracle, 32, 14);

  // CDF table at fixed relative-error abscissae (the paper's x-axis).
  const std::vector<double> xs = {0.05, 0.1, 0.15, 0.2, 0.3, 0.4,
                                  0.5,  0.7, 1.0,  1.5, 2.0};
  std::vector<std::string> header{"rel_error"};
  for (const auto& [name, errs] : series) {
    (void)errs;
    header.push_back(name);
  }
  util::Table table(header);
  std::map<std::string, util::EmpiricalCdf> cdfs;
  for (const auto& [name, errs] : series) cdfs.emplace(name, errs);
  for (const double x : xs) {
    std::vector<util::Table::Cell> row{x};
    for (const auto& [name, cdf] : cdfs) row.emplace_back(cdf.Eval(x));
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToText(3).c_str());

  util::Table summary({"series", "mean", "p50", "p90"});
  for (const auto& [name, errs] : series) {
    summary.AddRow({name, util::Mean(errs), util::Percentile(errs, 50),
                    util::Percentile(errs, 90)});
  }
  std::printf("%s\n", summary.ToText(3).c_str());

  // Visual CDF (x = relative error, y = fraction of pairs).
  std::vector<util::ChartSeries> chart;
  for (const auto& [name, cdf] : cdfs) {
    util::ChartSeries s;
    s.name = name;
    for (double x = 0.0; x <= 1.0; x += 0.02)
      s.points.emplace_back(x, cdf.Eval(x));
    chart.push_back(std::move(s));
  }
  util::ChartOptions copt;
  copt.y_min = 0.0;
  copt.y_max = 1.0;
  std::printf("%s\n", util::RenderAsciiChart(chart, copt).c_str());

  std::printf(
      "Check: Leafset-32 should track GNP-16; larger leafset/landmark "
      "sets should not be worse.\n");

  csv.Write(table, "fig4_cdf");
  csv.Write(summary, "fig4_summary");
  return 0;
}
