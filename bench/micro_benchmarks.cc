// Google-benchmark micro-benchmarks for the hot paths: DHT routing,
// AMCast planning, adjustment, SOMO tree construction, Nelder–Mead, and
// the latency oracle build. These are engineering benchmarks (wall-clock
// of the implementation), not paper figures.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "alm/adjust.h"
#include "pool/resource_pool.h"
#include "alm/critical.h"
#include "coord/nelder_mead.h"
#include "dht/ring.h"
#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "somo/logical_tree.h"
#include "util/rng.h"

namespace p2p {
namespace {

dht::Ring& SharedRing(std::size_t n, dht::RoutingGeometry geometry =
                                         dht::RoutingGeometry::kChordFingers) {
  static std::map<std::pair<std::size_t, int>,
                  std::unique_ptr<dht::Ring>>
      rings;
  auto& slot = rings[{n, static_cast<int>(geometry)}];
  if (!slot) {
    slot = std::make_unique<dht::Ring>(16, nullptr, geometry);
    for (std::size_t i = 0; i < n; ++i) slot->JoinHashed(i);
    slot->StabilizeAll();
  }
  return *slot;
}

void BM_RingJoin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dht::Ring ring(16);
    for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
    benchmark::DoNotOptimize(ring.alive_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RingJoin)->Arg(256)->Arg(1024);

void BM_RingRoute(benchmark::State& state) {
  auto& ring = SharedRing(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(7);
  std::size_t hops = 0;
  for (auto _ : state) {
    const auto r = ring.Route(rng.NextBounded(ring.size()), rng());
    hops += r.hops;
    benchmark::DoNotOptimize(r.destination);
  }
  state.counters["avg_hops"] = benchmark::Counter(
      static_cast<double>(hops) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_RingRoute)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RingRoutePastry(benchmark::State& state) {
  auto& ring = SharedRing(static_cast<std::size_t>(state.range(0)),
                          dht::RoutingGeometry::kPastryPrefix);
  util::Rng rng(7);
  std::size_t hops = 0;
  for (auto _ : state) {
    const auto r = ring.Route(rng.NextBounded(ring.size()), rng());
    hops += r.hops;
    benchmark::DoNotOptimize(r.destination);
  }
  state.counters["avg_hops"] = benchmark::Counter(
      static_cast<double>(hops) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_RingRoutePastry)->Arg(256)->Arg(1024)->Arg(4096);

void BM_LogicalTreeBuild(benchmark::State& state) {
  auto& ring = SharedRing(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    somo::LogicalTree tree(ring, 8);
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_LogicalTreeBuild)->Arg(256)->Arg(1024)->Arg(4096);

void BM_LatencyOracleBuild(benchmark::State& state) {
  util::Rng rng(5);
  const auto topo = net::GenerateTransitStub(net::TransitStubParams{}, rng);
  for (auto _ : state) {
    net::LatencyOracle oracle(topo);
    benchmark::DoNotOptimize(oracle.Latency(0, 1));
  }
}
BENCHMARK(BM_LatencyOracleBuild)->Unit(benchmark::kMillisecond);

struct PlanFixture {
  net::TransitStubTopology topo;
  net::LatencyOracle oracle;
  std::vector<int> bounds;

  explicit PlanFixture(std::uint64_t seed) : topo([&] {
          util::Rng rng(seed);
          return net::GenerateTransitStub(net::TransitStubParams{}, rng);
        }()),
        oracle(topo) {
    util::Rng rng(seed + 1);
    for (std::size_t i = 0; i < topo.host_count(); ++i)
      bounds.push_back(pool::SamplePaperDegreeBound(rng));
  }
};

void BM_AmcastPlan(benchmark::State& state) {
  static PlanFixture fx(9);
  const auto group = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  const auto idx = rng.SampleIndices(fx.topo.host_count(), group);
  alm::AmcastInput in;
  in.degree_bounds = fx.bounds;
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  auto latency = [&](std::size_t a, std::size_t b) {
    return fx.oracle.Latency(a, b);
  };
  for (auto _ : state) {
    const auto r = BuildAmcastTree(in, latency);
    benchmark::DoNotOptimize(r.height);
  }
}
BENCHMARK(BM_AmcastPlan)->Arg(20)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_AmcastPlanWithHelpers(benchmark::State& state) {
  static PlanFixture fx(13);
  const auto group = static_cast<std::size_t>(state.range(0));
  util::Rng rng(15);
  const auto idx = rng.SampleIndices(fx.topo.host_count(), group);
  alm::AmcastInput in;
  in.degree_bounds = fx.bounds;
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  std::vector<char> is_member(fx.topo.host_count(), 0);
  for (const auto v : idx) is_member[v] = 1;
  for (std::size_t v = 0; v < fx.topo.host_count(); ++v) {
    if (!is_member[v] && fx.bounds[v] >= 4) in.helper_candidates.push_back(v);
  }
  auto latency = [&](std::size_t a, std::size_t b) {
    return fx.oracle.Latency(a, b);
  };
  alm::AmcastOptions opt;
  opt.selection = alm::HelperSelection::kMinimaxHeuristic;
  for (auto _ : state) {
    const auto r = BuildAmcastTree(in, latency, opt);
    benchmark::DoNotOptimize(r.height);
  }
}
BENCHMARK(BM_AmcastPlanWithHelpers)->Arg(20)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_AdjustTree(benchmark::State& state) {
  static PlanFixture fx(17);
  const auto group = static_cast<std::size_t>(state.range(0));
  util::Rng rng(19);
  const auto idx = rng.SampleIndices(fx.topo.host_count(), group);
  alm::AmcastInput in;
  in.degree_bounds = fx.bounds;
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  auto latency = [&](std::size_t a, std::size_t b) {
    return fx.oracle.Latency(a, b);
  };
  const auto built = BuildAmcastTree(in, latency);
  for (auto _ : state) {
    auto tree = built.tree;
    const auto stats = AdjustTree(tree, fx.bounds, latency);
    benchmark::DoNotOptimize(stats.final_height);
  }
}
BENCHMARK(BM_AdjustTree)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_NelderMead5d(benchmark::State& state) {
  auto f = [](const coord::Vec& x) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      s += (x[i] - static_cast<double>(i)) * (x[i] - static_cast<double>(i));
    return s;
  };
  for (auto _ : state) {
    coord::Vec x(5, 100.0);
    const auto r = coord::Minimize(f, x);
    benchmark::DoNotOptimize(r.best_value);
  }
}
BENCHMARK(BM_NelderMead5d);

}  // namespace
}  // namespace p2p

BENCHMARK_MAIN();
