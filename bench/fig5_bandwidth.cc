// Figure 5: average relative error of the leafset bottleneck-bandwidth
// estimator vs leafset size, on the Gnutella-like bandwidth population
// (substitution for the Saroiu/Gribble trace, DESIGN.md §4).
//
// Expected shape: error falls with leafset size; the upstream estimate is
// more accurate than the downstream one (most hosts' downlink exceeds most
// others' uplink); at leafset 32 the upstream error is near zero and the
// uplink ranking is essentially perfect.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bwest/estimator.h"
#include "dht/ring.h"
#include "net/bandwidth_model.h"
#include "net/latency_oracle.h"
#include "net/transit_stub.h"

namespace p2p {
namespace {

struct Row {
  std::size_t leafset;
  double up_err;
  double down_err;
  double ranking;
};

Row RunOne(const net::LatencyOracle& oracle,
           const net::BandwidthModel& model, std::size_t leafset_size,
           std::uint64_t seed) {
  dht::Ring ring(leafset_size, &oracle);
  for (net::HostIdx h = 0; h < oracle.host_count(); ++h)
    ring.JoinHashed(h, /*salt=*/seed & 0xff);
  ring.StabilizeAll();
  util::Rng rng(seed);
  bwest::BandwidthEstimator est(ring, model, bwest::PacketPairOptions{},
                                rng);
  est.EstimateAll();
  util::Accumulator up, down;
  for (std::size_t n = 0; n < ring.size(); ++n) {
    up.Add(est.UpRelativeError(n));
    down.Add(est.DownRelativeError(n));
  }
  return {leafset_size, up.mean(), down.mean(), est.UpRankingAccuracy()};
}

}  // namespace
}  // namespace p2p

int main(int argc, char** argv) {
  using namespace p2p;
  bench::CsvSink csv(argc, argv);
  bench::PrintHeader(
      "Figure 5 — bottleneck-bandwidth estimation error vs leafset size",
      "Fig. 5: average relative error, Gnutella-like population");

  util::Rng topo_rng(7);
  const auto topo =
      net::GenerateTransitStub(net::TransitStubParams{}, topo_rng);
  util::ThreadPool threads;
  const net::LatencyOracle oracle(topo, &threads);
  util::Rng bw_rng(8);
  const net::BandwidthModel model(net::GnutellaAccessClasses(),
                                  topo.host_count(), bw_rng);

  util::Table table(
      {"leafset", "up_rel_err", "down_rel_err", "up_ranking_acc"});
  for (const std::size_t L : {4u, 8u, 16u, 32u, 64u}) {
    // Average over 3 ring instantiations (different id salts).
    util::Accumulator up, down, rank;
    for (std::uint64_t r = 0; r < 3; ++r) {
      const auto row = RunOne(oracle, model, L, 100 + r);
      up.Add(row.up_err);
      down.Add(row.down_err);
      rank.Add(row.ranking);
    }
    table.AddRow({static_cast<long long>(L), up.mean(), down.mean(),
                  rank.mean()});
  }
  std::printf("%s\n", table.ToText(4).c_str());
  std::printf(
      "Check: error decreases with leafset size; uplink beats downlink; "
      "uplink error ~0 and ranking ~1.0 at leafset 32.\n");
  csv.Write(table, "fig5_bandwidth");
  return 0;
}
