// Figure 10: multiple concurrent ALM sessions competing for the pool
// through the market-driven scheduler.
//  (a) mean improvement per priority class vs number of active sessions,
//      against the lower bound (AMCast+adjust, members only) and upper
//      bound (Leafset+adjust with the pool to itself);
//  (b) mean number of helper nodes retained per priority class.
//
// Expected shape: every class lies between the bounds; performance decays
// as sessions multiply and resources grow scarce; priority 1 sustains the
// most improvement and the most helpers, priority 3 loses helpers first.
#include <cstdio>
#include <mutex>
#include <vector>

#include "bench/bench_common.h"
#include "pool/multi_session_sim.h"

int main(int argc, char** argv) {
  using namespace p2p;
  bench::CsvSink csv(argc, argv);
  bench::PrintHeader(
      "Figure 10 — market-driven scheduling of concurrent sessions",
      "Fig. 10(a)/(b): 10..60 sessions of 20, priorities 1-3");

  const std::vector<std::size_t> kSessionCounts = {10, 20, 30, 40, 50, 60};
  constexpr std::size_t kRepeats = 3;  // experiment repetitions per count

  struct RowAgg {
    util::Accumulator impr[4];   // by priority 1..3
    util::Accumulator helpers[4];
    util::Accumulator lb, ub, util_frac, preemptions;
  };
  std::vector<RowAgg> rows(kSessionCounts.size());
  std::mutex mu;

  util::ThreadPool threads;
  threads.ParallelFor(
      kSessionCounts.size() * kRepeats, [&](std::size_t job) {
        const std::size_t ci = job % kSessionCounts.size();
        const std::size_t rep = job / kSessionCounts.size();
        pool::ResourcePool rp(bench::PaperConfig(42 + rep));
        pool::MultiSessionParams params;
        params.session_count = kSessionCounts[ci];
        params.members_per_session = 20;
        params.rescheduling_sweeps = 2;
        params.seed = 900 + job;
        const auto result = RunMultiSessionExperiment(rp, params);

        std::lock_guard lock(mu);
        RowAgg& agg = rows[ci];
        for (int p = 1; p <= 3; ++p) {
          const auto& cls =
              result.by_priority[static_cast<std::size_t>(p)];
          if (cls.sessions == 0) continue;
          agg.impr[p].Add(cls.improvement.mean());
          agg.helpers[p].Add(cls.helpers_used.mean());
        }
        agg.lb.Add(result.lower_bound_improvement.mean());
        agg.ub.Add(result.upper_bound_improvement.mean());
        agg.util_frac.Add(result.pool_utilisation);
        agg.preemptions.Add(static_cast<double>(result.preemptions));
      });

  util::Table a({"sessions", "prio1", "prio2", "prio3", "lower_bound",
                 "upper_bound"});
  util::Table b({"sessions", "helpers_p1", "helpers_p2", "helpers_p3",
                 "utilisation", "preemptions"});
  for (std::size_t ci = 0; ci < kSessionCounts.size(); ++ci) {
    const RowAgg& agg = rows[ci];
    a.AddRow({static_cast<long long>(kSessionCounts[ci]),
              agg.impr[1].mean(), agg.impr[2].mean(), agg.impr[3].mean(),
              agg.lb.mean(), agg.ub.mean()});
    b.AddRow({static_cast<long long>(kSessionCounts[ci]),
              agg.helpers[1].mean(), agg.helpers[2].mean(),
              agg.helpers[3].mean(), agg.util_frac.mean(),
              agg.preemptions.mean()});
  }
  std::printf("(a) improvement over own AMCast baseline, by priority\n%s\n",
              a.ToText(3).c_str());
  std::printf("(b) helper nodes per session, by priority\n%s\n",
              b.ToText(2).c_str());
  std::printf(
      "Check: all classes within [lower_bound, upper_bound]; improvement "
      "decays with session count; prio1 >= prio2 >= prio3 in both "
      "improvement and helpers as contention rises.\n");
  csv.Write(a, "fig10a_improvement");
  csv.Write(b, "fig10b_helpers");
  return 0;
}
