// Ablation: bandwidth-constrained ALM scheduling. The paper's Figure-7
// report carries up/downlink estimates precisely so a task manager can
// respect stream rates; this sweep shows what happens to tree height,
// helper usage and feasibility as the per-link stream rate rises on the
// Gnutella-like access population (modems cannot source even one stream;
// T3 hosts can fan out dozens).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "pool/task_manager.h"

namespace {

using namespace p2p;

alm::SessionSpec SpecFor(pool::ResourcePool& rp, alm::SessionId id,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  auto idx = rng.SampleIndices(rp.size(), 20);
  // Root the session at its best-uplinked member — a modem host cannot
  // source a stream to anyone, so no rational organiser roots there.
  std::size_t best = 0;
  for (std::size_t i = 1; i < idx.size(); ++i) {
    if (rp.bandwidths().host(idx[i]).up_kbps >
        rp.bandwidths().host(idx[best]).up_kbps)
      best = i;
  }
  std::swap(idx[0], idx[best]);
  alm::SessionSpec spec;
  spec.id = id;
  spec.priority = 1;
  spec.root = idx[0];
  spec.members.assign(idx.begin() + 1, idx.end());
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;
  bench::CsvSink csv(argc, argv);
  bench::PrintHeader(
      "Ablation — stream-rate-constrained scheduling",
      "an extension exercising the Figure-7 report's bandwidth fields");

  util::ThreadPool threads;
  pool::ResourcePool rp(bench::PaperConfig(83), &threads);

  constexpr std::size_t kRuns = 10;
  util::Table table({"stream_kbps", "feasible_frac", "height_ms", "helpers",
                     "improvement"});
  for (const double rate : {0.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0}) {
    util::Accumulator height, helpers, impr;
    std::size_t feasible = 0;
    for (std::size_t run = 0; run < kRuns; ++run) {
      pool::TaskManagerOptions opt;
      opt.stream_kbps = rate;
      pool::TaskManager tm(rp, SpecFor(rp, 1, 600 + run), opt);
      const auto out = tm.Schedule();
      if (out.ok) {
        ++feasible;
        height.Add(tm.current_height());
        helpers.Add(static_cast<double>(tm.current_helpers()));
        impr.Add(tm.CurrentImprovement());
      }
      tm.Teardown();
    }
    table.AddRow({rate,
                  static_cast<double>(feasible) /
                      static_cast<double>(kRuns),
                  height.mean(), helpers.mean(), impr.mean()});
  }
  std::printf("%s\n", table.ToText(3).c_str());
  std::printf(
      "Check: unconstrained (0) is the Figure-8 regime; as the rate rises, "
      "thin-uplink members become leaves and trees lean on high-uplink "
      "helpers (the feasibility-rescue splice), heights grow — eventually "
      "past the unconstrained AMCast baseline (negative improvement: the "
      "constrained problem is strictly harder) — and at ~2 Mbps per link "
      "even helper capacity runs out for some sessions.\n");
  csv.Write(table, "ablation_bandwidth");
  return 0;
}
