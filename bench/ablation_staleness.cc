// Ablation (beyond the paper's figures, using its machinery): what does
// SOMO's staleness cost the market? The full closed loop — reports →
// gather → task managers planning from the root view → live reservations —
// swept over the SOMO reporting interval. Stale knowledge surfaces as
// refused reservations (replanned against live state) and slightly worse
// plans; the paper's claim is that with its "on-time and accurate
// newscast" the hands-off market works, and this quantifies how on-time
// it has to be.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "pool/live_pool.h"

int main(int argc, char** argv) {
  using namespace p2p;
  bench::CsvSink csv(argc, argv);
  bench::PrintHeader("Ablation — scheduling quality vs SOMO staleness",
                     "§5.3's market loop run end-to-end in simulated time");

  util::ThreadPool threads;
  pool::ResourcePool rp(bench::PaperConfig(71), &threads);

  util::Table table({"report_interval_s", "view_staleness_s", "improvement",
                     "helpers", "stale_conflicts", "somo_msgs"});
  for (const double interval_ms :
       {1000.0, 2000.0, 5000.0, 10000.0, 30000.0, 60000.0}) {
    util::Accumulator impr, helpers, staleness, conflicts, msgs;
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      pool::LiveExperimentParams params;
      params.session_count = 20;
      params.members_per_session = 20;
      params.somo.report_interval_ms = interval_ms;
      params.somo.fanout = 8;
      params.seed = 500 + rep;
      const auto r = RunStalenessExperiment(rp, params);
      impr.Add(r.improvement.mean());
      helpers.Add(r.helpers.mean());
      staleness.Add(r.mean_view_staleness_ms / 1000.0);
      conflicts.Add(static_cast<double>(r.stale_conflicts));
      msgs.Add(static_cast<double>(r.somo_messages));
    }
    table.AddRow({interval_ms / 1000.0, staleness.mean(), impr.mean(),
                  helpers.mean(), conflicts.mean(), msgs.mean()});
  }
  std::printf("%s\n", table.ToText(2).c_str());
  std::printf(
      "Check: the market is remarkably robust — refused reservations plus "
      "an immediate live replan hold improvement steady across a 30x "
      "staleness range; only when the newscast lags the session-arrival "
      "timescale itself (60 s interval) do sessions start planning before "
      "any view exists and helper usage collapses. SOMO message volume "
      "scales inversely with the interval: freshness is paid for in "
      "traffic, not plan quality.\n");
  csv.Write(table, "ablation_staleness");
  return 0;
}
