// Network-substrate scale sweep: LatencyOracle build time, query latency,
// and memory at the topology presets, flat vs hierarchical.
//
// For each preset (1200 / 10k / 50k hosts) the sweep generates the
// topology once, builds the flat reference oracle, the hierarchical
// oracle, and the hierarchical oracle with float32 distance storage, then
// times an identical random host-pair query sequence against each. Every
// 1000th query is cross-checked flat-vs-hier (exact backends must agree),
// so the numbers below are guaranteed to price the same answers.
//
// JSON schema "p2pnetbench/v1"; tools/check_bench_scale.py gates the
// committed BENCH_net.json on the >=5x memory reduction and <=2x query
// ratio at the 10k+ presets, plus (PR 9) the substrate setup rows: wall
// seconds for topology generation + pooled hierarchical build + DHT batch
// join must stay under --max-setup-seconds, and the end-to-end setup must
// be >= --min-setup-speedup faster than the pre-SoA join cost (measured
// in-process by replaying the seed's dense O(N^2) prefix-table fill).
//
// The 100k preset skips the flat oracle BUILD (an ~880 MiB all-pairs
// triangle with a multi-minute Dijkstra sweep); its flat bytes are the
// closed-form triangle size, so the memory-reduction row stays honest,
// and the query-ratio row is marked unmeasured.
//
// Usage: bench_net [--json PATH] [--reps N] [--quick] [--big]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "dht/id.h"
#include "dht/ring.h"
#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "obs/json.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace p2p::bench {
namespace {

double WallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct OracleStats {
  double build_ms = 0.0;
  double query_ns = 0.0;
  std::size_t bytes = 0;
};

// Best-of-`reps` timing of `queries` against one oracle. The checksum
// keeps the loop from being optimised away; the caller compares checksums
// across oracles as the exactness spot-check.
double TimeQueries(const net::LatencyOracle& oracle,
                   const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                       queries,
                   int reps, double* checksum) {
  double best_ns = 0.0;
  for (int r = 0; r < reps; ++r) {
    double sum = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& [a, b] : queries) sum += oracle.Latency(a, b);
    const double ns = WallMs(t0) * 1e6 / static_cast<double>(queries.size());
    if (r == 0 || ns < best_ns) best_ns = ns;
    *checksum = sum;
  }
  return best_ns;
}

// Fullstack substrate setup: wall times for the three phases that gate a
// big-preset launch, plus an in-process replay of the seed's dense
// O(N^2) prefix-table fill (the pre-SoA join cost the PR 9 binary-search
// build replaced) as the speedup baseline.
struct SetupStats {
  std::size_t threads = 0;
  double topo_ms = 0.0;       // pooled GenerateTransitStub
  double hier_ms = 0.0;       // pooled hierarchical oracle build
  double join_ms = 0.0;       // Ring::JoinBatchHashed + StabilizeAll
  double join_presoa_ms = 0.0;  // 0 when skipped (100k+: would take minutes)

  double total_s() const { return (topo_ms + hier_ms + join_ms) / 1000.0; }
  double speedup_vs_presoa() const {
    if (join_presoa_ms <= 0.0) return 0.0;
    return (topo_ms + hier_ms + join_presoa_ms) /
           (topo_ms + hier_ms + join_ms);
  }
};

struct PresetResult {
  std::string name;
  std::size_t hosts = 0;
  std::size_t routers = 0;
  std::size_t core_nodes = 0;
  std::size_t gateways = 0;
  bool flat_measured = true;  // false => flat bytes are the closed form
  OracleStats flat, hier, hier_f32;
  SetupStats setup;

  double memory_reduction() const {
    return static_cast<double>(flat.bytes) /
           static_cast<double>(hier.bytes);
  }
  double query_ratio() const {
    return flat_measured ? hier.query_ns / flat.query_ns : 0.0;
  }
};

// The seed's Ring::BuildPrefixTable offered every sorted id to every node:
// N x N SharedPrefixDigits + first-come placement into a dense 16x16
// table. Replayed here verbatim over the real post-join id set so the
// setup speedup prices the actual algorithmic change, not machine drift
// against a stale committed number.
double PreSoaPrefixFillMs(const dht::Ring& ring) {
  std::vector<std::pair<dht::NodeId, std::uint32_t>> sorted;
  sorted.reserve(ring.size());
  for (dht::NodeIndex n = 0; n < ring.size(); ++n)
    sorted.emplace_back(ring.node(n).id(), static_cast<std::uint32_t>(n));
  std::sort(sorted.begin(), sorted.end());

  struct Slot {
    dht::NodeId id = 0;
    std::uint32_t node = 0xffffffffu;
  };
  std::vector<Slot> table(16 * 16);
  std::size_t filled_checksum = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& [owner_id, owner] : sorted) {
    for (auto& s : table) s = Slot{};
    for (const auto& [id, node] : sorted) {
      if (id == owner_id) continue;
      const std::uint64_t diff = owner_id ^ id;
      const std::size_t shared =
          static_cast<std::size_t>(__builtin_clzll(diff)) / 4;
      const std::size_t col = (id >> (60 - 4 * shared)) & 0xf;
      Slot& slot = table[shared * 16 + col];
      if (slot.node == 0xffffffffu) {
        slot = {id, node};
        ++filled_checksum;
      }
    }
  }
  const double ms = WallMs(t0);
  P2P_CHECK(filled_checksum > 0);  // keep the loop observable
  return ms;
}

PresetResult RunPreset(net::TopologyPreset preset, int reps,
                       std::size_t query_count) {
  PresetResult r;
  r.name = net::TopologyPresetName(preset);
  const net::TransitStubParams params = net::PresetParams(preset);
  const std::size_t threads =
      std::max(1u, std::thread::hardware_concurrency());
  util::ThreadPool pool(threads);
  r.setup.threads = threads;

  util::Rng topo_rng(42);
  auto t0 = std::chrono::steady_clock::now();
  const auto topo = net::GenerateTransitStub(params, topo_rng, &pool);
  r.setup.topo_ms = WallMs(t0);
  r.hosts = topo.host_count();
  r.routers = topo.router_count();
  // Building the flat all-pairs triangle at 100k+ routers costs minutes
  // and ~a GiB; beyond 50k hosts its bytes are reported closed-form and
  // the query-ratio row is unmeasured.
  r.flat_measured = r.hosts <= 50000;
  std::printf("[%s] %zu routers, %zu hosts ...\n", r.name.c_str(), r.routers,
              r.hosts);

  const auto build = [&](net::OracleKind kind, net::OraclePrecision prec,
                         util::ThreadPool* p) {
    const auto b0 = std::chrono::steady_clock::now();
    net::LatencyOracle oracle(
        topo, net::OracleOptions{.kind = kind, .precision = prec, .pool = p});
    const double ms = WallMs(b0);
    return std::make_pair(std::move(oracle), ms);
  };
  auto [hier, hier_ms] =
      build(net::OracleKind::kHierarchical, net::OraclePrecision::kF64,
            nullptr);
  auto [hier32, hier32_ms] =
      build(net::OracleKind::kHierarchical, net::OraclePrecision::kF32,
            nullptr);
  r.hier = {hier_ms, 0.0, hier.MemoryBytes()};
  r.hier_f32 = {hier32_ms, 0.0, hier32.MemoryBytes()};
  r.core_nodes = hier.core_node_count();
  r.gateways = hier.gateway_count();

  // Pooled hierarchical rebuild: the setup row mirrors the fullstack CLI
  // (which always hands the oracle its worker pool).
  r.setup.hier_ms =
      build(net::OracleKind::kHierarchical, net::OraclePrecision::kF64, &pool)
          .second;

  // DHT bulk bootstrap over the preset's host set, the third setup phase.
  {
    dht::Ring ring(32, &hier);
    ring.set_thread_pool(&pool);
    t0 = std::chrono::steady_clock::now();
    const dht::NodeIndex first = ring.JoinBatchHashed(0, topo.host_count());
    r.setup.join_ms = WallMs(t0);
    P2P_CHECK(first == 0 && ring.size() == topo.host_count());
    if (r.flat_measured) r.setup.join_presoa_ms = PreSoaPrefixFillMs(ring);
  }

  // One shared random pair sequence, with spot checks that the backends
  // price the same answers.
  util::Rng qrng(42 ^ r.hosts);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> queries;
  queries.reserve(query_count);
  for (std::size_t i = 0; i < query_count; ++i)
    queries.emplace_back(
        static_cast<std::uint32_t>(qrng.NextBounded(r.hosts)),
        static_cast<std::uint32_t>(qrng.NextBounded(r.hosts)));

  if (!r.flat_measured) {
    // Closed-form flat footprint: the lower-triangle f64 router matrix
    // plus the per-host attach arrays — what the build would allocate.
    r.flat.bytes = r.routers * (r.routers + 1) / 2 * sizeof(double) +
                   r.hosts * (sizeof(net::NodeIdx) + sizeof(double));
    double sum_hier = 0.0, sum_f32 = 0.0;
    r.hier.query_ns = TimeQueries(hier, queries, reps, &sum_hier);
    r.hier_f32.query_ns = TimeQueries(hier32, queries, reps, &sum_f32);
    P2P_CHECK(std::abs(sum_f32 - sum_hier) <
              1e-3 * static_cast<double>(queries.size()));
    return r;
  }

  auto [flat, flat_ms] =
      build(net::OracleKind::kFlat, net::OraclePrecision::kF64, nullptr);
  r.flat = {flat_ms, 0.0, flat.MemoryBytes()};
  for (std::size_t i = 0; i < queries.size(); i += 1000) {
    const auto [a, b] = queries[i];
    const double f = flat.Latency(a, b);
    P2P_CHECK_MSG(std::abs(hier.Latency(a, b) - f) < 1e-6,
                  "hier backend diverged from flat at query " << i);
    P2P_CHECK_MSG(std::abs(hier32.Latency(a, b) - f) < 1e-3,
                  "f32 storage beyond 1e-3 ms at query " << i);
  }
  double sum_flat = 0.0, sum_hier = 0.0, sum_f32 = 0.0;
  r.flat.query_ns = TimeQueries(flat, queries, reps, &sum_flat);
  r.hier.query_ns = TimeQueries(hier, queries, reps, &sum_hier);
  r.hier_f32.query_ns = TimeQueries(hier32, queries, reps, &sum_f32);
  P2P_CHECK(std::abs(sum_hier - sum_flat) <
            1e-6 * static_cast<double>(queries.size()));
  P2P_CHECK(std::abs(sum_f32 - sum_flat) <
            1e-3 * static_cast<double>(queries.size()));
  return r;
}

void WriteJson(const std::vector<PresetResult>& results,
               const std::string& path) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("p2pnetbench/v1");
  w.Key("presets").BeginArray();
  for (const auto& r : results) {
    const auto oracle = [&w](const char* name, const OracleStats& s) {
      w.Key(name).BeginObject();
      w.Key("build_ms").Number(s.build_ms);
      w.Key("query_ns").Number(s.query_ns);
      w.Key("bytes").Uint(s.bytes);
      w.EndObject();
    };
    w.BeginObject();
    w.Key("preset").String(r.name);
    w.Key("hosts").Uint(r.hosts);
    w.Key("routers").Uint(r.routers);
    w.Key("core_nodes").Uint(r.core_nodes);
    w.Key("gateways").Uint(r.gateways);
    w.Key("flat_measured").Bool(r.flat_measured);
    oracle("flat", r.flat);
    oracle("hier", r.hier);
    oracle("hier_f32", r.hier_f32);
    w.Key("setup").BeginObject();
    w.Key("threads").Uint(r.setup.threads);
    w.Key("topo_ms").Number(r.setup.topo_ms);
    w.Key("hier_ms").Number(r.setup.hier_ms);
    w.Key("dht_join_ms").Number(r.setup.join_ms);
    w.Key("dht_join_presoa_ms").Number(r.setup.join_presoa_ms);
    w.Key("total_s").Number(r.setup.total_s());
    w.Key("speedup_vs_presoa").Number(r.setup.speedup_vs_presoa());
    w.EndObject();
    w.Key("memory_reduction").Number(r.memory_reduction());
    w.Key("query_ratio_hier_over_flat").Number(r.query_ratio());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("[json] FAILED to open %s\n", path.c_str());
    return;
  }
  const std::string out = w.Take();
  std::fwrite(out.data(), 1, out.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace p2p::bench

int main(int argc, char** argv) {
  using namespace p2p::bench;

  std::string json_path;
  int reps = 3;
  bool quick = false;
  bool big = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
    if (arg == "--quick") quick = true;
    if (arg == "--big") big = true;
  }

  std::vector<p2p::net::TopologyPreset> presets = {
      p2p::net::TopologyPreset::kPaper1200,
      p2p::net::TopologyPreset::kHosts10k,
      p2p::net::TopologyPreset::kHosts50k};
  if (quick) presets.pop_back();
  if (big) presets.push_back(p2p::net::TopologyPreset::kHosts100k);
  const std::size_t query_count = quick ? 100000 : 1000000;

  std::printf("\n=== Network substrate scale sweep ===\n");
  std::printf("(flat = all-pairs router triangle, hier = stub-domain + "
              "gateway-core\n decomposition; query best of %d over %zu "
              "random host pairs)\n\n", reps, query_count);

  std::vector<PresetResult> results;
  p2p::util::Table table({"preset", "routers", "hosts", "flat build ms",
                          "hier build ms", "flat MiB", "hier MiB",
                          "mem reduction", "flat q ns", "hier q ns",
                          "q ratio"});
  p2p::util::Table setup_table({"preset", "threads", "topo ms", "hier ms",
                                "join ms", "pre-SoA join ms", "setup s",
                                "setup speedup"});
  for (const auto preset : presets) {
    PresetResult r = RunPreset(preset, reps, query_count);
    table.AddRow({r.name, static_cast<long long>(r.routers),
                  static_cast<long long>(r.hosts), r.flat.build_ms,
                  r.hier.build_ms,
                  static_cast<double>(r.flat.bytes) / (1024.0 * 1024.0),
                  static_cast<double>(r.hier.bytes) / (1024.0 * 1024.0),
                  r.memory_reduction(), r.flat.query_ns, r.hier.query_ns,
                  r.query_ratio()});
    setup_table.AddRow({r.name, static_cast<long long>(r.setup.threads),
                        r.setup.topo_ms, r.setup.hier_ms, r.setup.join_ms,
                        r.setup.join_presoa_ms, r.setup.total_s(),
                        r.setup.speedup_vs_presoa()});
    results.push_back(std::move(r));
  }
  std::printf("\n%s\n", table.ToText().c_str());
  std::printf("=== Substrate setup (topology + pooled hier oracle + DHT "
              "batch join;\n pre-SoA join = replayed dense O(N^2) prefix "
              "fill) ===\n%s\n", setup_table.ToText().c_str());

  if (!json_path.empty()) WriteJson(results, json_path);
  return 0;
}
