// Network-substrate scale sweep: LatencyOracle build time, query latency,
// and memory at the topology presets, flat vs hierarchical.
//
// For each preset (1200 / 10k / 50k hosts) the sweep generates the
// topology once, builds the flat reference oracle, the hierarchical
// oracle, and the hierarchical oracle with float32 distance storage, then
// times an identical random host-pair query sequence against each. Every
// 1000th query is cross-checked flat-vs-hier (exact backends must agree),
// so the numbers below are guaranteed to price the same answers.
//
// JSON schema "p2pnetbench/v1"; tools/check_bench_scale.py gates the
// committed BENCH_net.json on the >=5x memory reduction and <=2x query
// ratio at the 10k+ presets.
//
// Usage: bench_net [--json PATH] [--reps N] [--quick]
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "obs/json.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/rng.h"

namespace p2p::bench {
namespace {

double WallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct OracleStats {
  double build_ms = 0.0;
  double query_ns = 0.0;
  std::size_t bytes = 0;
};

// Best-of-`reps` timing of `queries` against one oracle. The checksum
// keeps the loop from being optimised away; the caller compares checksums
// across oracles as the exactness spot-check.
double TimeQueries(const net::LatencyOracle& oracle,
                   const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                       queries,
                   int reps, double* checksum) {
  double best_ns = 0.0;
  for (int r = 0; r < reps; ++r) {
    double sum = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& [a, b] : queries) sum += oracle.Latency(a, b);
    const double ns = WallMs(t0) * 1e6 / static_cast<double>(queries.size());
    if (r == 0 || ns < best_ns) best_ns = ns;
    *checksum = sum;
  }
  return best_ns;
}

struct PresetResult {
  std::string name;
  std::size_t hosts = 0;
  std::size_t routers = 0;
  std::size_t core_nodes = 0;
  std::size_t gateways = 0;
  OracleStats flat, hier, hier_f32;

  double memory_reduction() const {
    return static_cast<double>(flat.bytes) /
           static_cast<double>(hier.bytes);
  }
  double query_ratio() const { return hier.query_ns / flat.query_ns; }
};

PresetResult RunPreset(net::TopologyPreset preset, int reps,
                       std::size_t query_count) {
  PresetResult r;
  r.name = net::TopologyPresetName(preset);
  const net::TransitStubParams params = net::PresetParams(preset);
  util::Rng topo_rng(42);
  const auto topo = net::GenerateTransitStub(params, topo_rng);
  r.hosts = topo.host_count();
  r.routers = topo.router_count();
  std::printf("[%s] %zu routers, %zu hosts ...\n", r.name.c_str(), r.routers,
              r.hosts);

  const auto build = [&](net::OracleKind kind, net::OraclePrecision prec) {
    const auto t0 = std::chrono::steady_clock::now();
    net::LatencyOracle oracle(
        topo, net::OracleOptions{.kind = kind, .precision = prec});
    const double ms = WallMs(t0);
    return std::make_pair(std::move(oracle), ms);
  };
  auto [flat, flat_ms] =
      build(net::OracleKind::kFlat, net::OraclePrecision::kF64);
  auto [hier, hier_ms] =
      build(net::OracleKind::kHierarchical, net::OraclePrecision::kF64);
  auto [hier32, hier32_ms] =
      build(net::OracleKind::kHierarchical, net::OraclePrecision::kF32);
  r.flat = {flat_ms, 0.0, flat.MemoryBytes()};
  r.hier = {hier_ms, 0.0, hier.MemoryBytes()};
  r.hier_f32 = {hier32_ms, 0.0, hier32.MemoryBytes()};
  r.core_nodes = hier.core_node_count();
  r.gateways = hier.gateway_count();

  // One shared random pair sequence, with spot checks that the backends
  // price the same answers.
  util::Rng qrng(42 ^ r.hosts);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> queries;
  queries.reserve(query_count);
  for (std::size_t i = 0; i < query_count; ++i)
    queries.emplace_back(
        static_cast<std::uint32_t>(qrng.NextBounded(r.hosts)),
        static_cast<std::uint32_t>(qrng.NextBounded(r.hosts)));
  for (std::size_t i = 0; i < queries.size(); i += 1000) {
    const auto [a, b] = queries[i];
    const double f = flat.Latency(a, b);
    P2P_CHECK_MSG(std::abs(hier.Latency(a, b) - f) < 1e-6,
                  "hier backend diverged from flat at query " << i);
    P2P_CHECK_MSG(std::abs(hier32.Latency(a, b) - f) < 1e-3,
                  "f32 storage beyond 1e-3 ms at query " << i);
  }
  double sum_flat = 0.0, sum_hier = 0.0, sum_f32 = 0.0;
  r.flat.query_ns = TimeQueries(flat, queries, reps, &sum_flat);
  r.hier.query_ns = TimeQueries(hier, queries, reps, &sum_hier);
  r.hier_f32.query_ns = TimeQueries(hier32, queries, reps, &sum_f32);
  P2P_CHECK(std::abs(sum_hier - sum_flat) <
            1e-6 * static_cast<double>(queries.size()));
  P2P_CHECK(std::abs(sum_f32 - sum_flat) <
            1e-3 * static_cast<double>(queries.size()));
  return r;
}

void WriteJson(const std::vector<PresetResult>& results,
               const std::string& path) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("p2pnetbench/v1");
  w.Key("presets").BeginArray();
  for (const auto& r : results) {
    const auto oracle = [&w](const char* name, const OracleStats& s) {
      w.Key(name).BeginObject();
      w.Key("build_ms").Number(s.build_ms);
      w.Key("query_ns").Number(s.query_ns);
      w.Key("bytes").Uint(s.bytes);
      w.EndObject();
    };
    w.BeginObject();
    w.Key("preset").String(r.name);
    w.Key("hosts").Uint(r.hosts);
    w.Key("routers").Uint(r.routers);
    w.Key("core_nodes").Uint(r.core_nodes);
    w.Key("gateways").Uint(r.gateways);
    oracle("flat", r.flat);
    oracle("hier", r.hier);
    oracle("hier_f32", r.hier_f32);
    w.Key("memory_reduction").Number(r.memory_reduction());
    w.Key("query_ratio_hier_over_flat").Number(r.query_ratio());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("[json] FAILED to open %s\n", path.c_str());
    return;
  }
  const std::string out = w.Take();
  std::fwrite(out.data(), 1, out.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace p2p::bench

int main(int argc, char** argv) {
  using namespace p2p::bench;

  std::string json_path;
  int reps = 3;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
    if (arg == "--quick") quick = true;
  }

  std::vector<p2p::net::TopologyPreset> presets = {
      p2p::net::TopologyPreset::kPaper1200,
      p2p::net::TopologyPreset::kHosts10k,
      p2p::net::TopologyPreset::kHosts50k};
  if (quick) presets.pop_back();
  const std::size_t query_count = quick ? 100000 : 1000000;

  std::printf("\n=== Network substrate scale sweep ===\n");
  std::printf("(flat = all-pairs router triangle, hier = stub-domain + "
              "gateway-core\n decomposition; query best of %d over %zu "
              "random host pairs)\n\n", reps, query_count);

  std::vector<PresetResult> results;
  p2p::util::Table table({"preset", "routers", "hosts", "flat build ms",
                          "hier build ms", "flat MiB", "hier MiB",
                          "mem reduction", "flat q ns", "hier q ns",
                          "q ratio"});
  for (const auto preset : presets) {
    PresetResult r = RunPreset(preset, reps, query_count);
    table.AddRow({r.name, static_cast<long long>(r.routers),
                  static_cast<long long>(r.hosts), r.flat.build_ms,
                  r.hier.build_ms,
                  static_cast<double>(r.flat.bytes) / (1024.0 * 1024.0),
                  static_cast<double>(r.hier.bytes) / (1024.0 * 1024.0),
                  r.memory_reduction(), r.flat.query_ns, r.hier.query_ns,
                  r.query_ratio()});
    results.push_back(std::move(r));
  }
  std::printf("\n%s\n", table.ToText().c_str());

  if (!json_path.empty()) WriteJson(results, json_path);
  return 0;
}
