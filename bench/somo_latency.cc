// §3.2 quantitative claims: SOMO aggregation latency.
//
//  * Unsynchronised gather: root staleness bounded by log_k(N)·T.
//  * Synchronised gather: ≈ T + t_hop·log_k(N); the information itself is
//    only 2·t_hop·log_k(N) old when it reaches the root.
//  * Analytic check of the paper's headline number: 2M nodes, k=8,
//    t_hop = 200 ms → root view lag ≈ 1.6 s.
//
// Also sweeps the fanout k (ablation: depth/latency trade-off).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "dht/ring.h"
#include "sim/simulation.h"
#include "somo/somo.h"

namespace p2p {
namespace {

struct Sample {
  std::size_t nodes;
  std::size_t fanout;
  std::size_t depth;
  double unsync_staleness_ms;
  double sync_staleness_ms;
  double sync_cascade_ms;     // wall-clock of one full cascade
  double bytes_per_node_cycle = 0.0;  // gather overhead (unsync mode)
};

Sample Measure(std::size_t n, std::size_t fanout, double hop_ms,
               double interval_ms) {
  Sample s{n, fanout, 0, 0, 0, 0};
  for (const bool synchronized : {false, true}) {
    sim::Simulation sim(n * 131 + fanout);
    dht::Ring ring(16);
    for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
    ring.StabilizeAll();
    somo::SomoConfig cfg;
    cfg.fanout = fanout;
    cfg.report_interval_ms = interval_ms;
    cfg.synchronized_gather = synchronized;
    cfg.default_hop_delay_ms = hop_ms;
    somo::SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex node) {
      somo::NodeReport r;
      r.node = node;
      r.host = ring.node(node).host();
      r.generated_at = sim.now();
      return r;
    });
    s.depth = somo.tree().depth();
    somo.Start();
    // Warm up: several intervals, then sample staleness over time.
    const double warmup =
        (static_cast<double>(s.depth) + 3.0) * interval_ms;
    sim.RunUntil(warmup);
    util::Accumulator staleness;
    const std::size_t before = somo.gathers_completed();
    double cascade_start = sim.now();
    for (int i = 0; i < 40; ++i) {
      sim.RunUntil(sim.now() + interval_ms / 4.0);
      if (somo.RootViewComplete()) staleness.Add(somo.RootStalenessMs());
    }
    if (synchronized) {
      s.sync_staleness_ms = staleness.mean();
      const std::size_t completed = somo.gathers_completed() - before;
      s.sync_cascade_ms =
          completed > 0 ? (sim.now() - cascade_start) / 1.0 : 0.0;
      // Wall-clock of one cascade ≈ 2·depth·hop (measured separately).
      s.sync_cascade_ms = 2.0 * static_cast<double>(s.depth) * hop_ms;
    } else {
      s.unsync_staleness_ms = staleness.mean();
      const double cycles = sim.now() / interval_ms;
      s.bytes_per_node_cycle = static_cast<double>(somo.bytes_sent()) /
                               static_cast<double>(n) / cycles;
    }
  }
  return s;
}

}  // namespace
}  // namespace p2p

int main(int argc, char** argv) {
  using namespace p2p;
  bench::CsvSink csv(argc, argv);
  bench::PrintHeader("SOMO aggregation latency (§3.2 bounds)",
                     "§3.2: log_k(N)·T unsync, T + t_hop·log_k(N) sync");

  const double kHop = 200.0;      // the paper's typical DHT hop
  const double kInterval = 5000;  // the paper's 5 s reporting cycle

  util::Table table({"nodes", "fanout", "depth", "unsync_stale_ms",
                     "unsync_bound_ms", "sync_stale_ms", "sync_bound_ms",
                     "bytes/node/cycle"});
  for (const std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const auto s = Measure(n, 8, kHop, kInterval);
    table.AddRow({static_cast<long long>(n), 8ll,
                  static_cast<long long>(s.depth), s.unsync_staleness_ms,
                  static_cast<double>(s.depth) * kInterval,
                  s.sync_staleness_ms,
                  kInterval + 2.0 * static_cast<double>(s.depth) * kHop,
                  s.bytes_per_node_cycle});
  }
  std::printf("%s\n", table.ToText(1).c_str());

  util::Table fanout_table(
      {"fanout", "depth", "unsync_stale_ms", "sync_stale_ms"});
  for (const std::size_t k : {2u, 4u, 8u, 16u}) {
    const auto s = Measure(1024, k, kHop, kInterval);
    fanout_table.AddRow({static_cast<long long>(k),
                         static_cast<long long>(s.depth),
                         s.unsync_staleness_ms, s.sync_staleness_ms});
  }
  std::printf("fanout ablation (N=1024):\n%s\n",
              fanout_table.ToText(1).c_str());

  // The paper's analytic headline: 2M nodes, k=8, 200 ms/hop → ~1.6 s.
  const double depth_2m = std::ceil(std::log(2e6) / std::log(8.0));
  std::printf(
      "Analytic check, 2M nodes, k=8, t_hop=200 ms: depth=%.0f, "
      "t_hop*log_k(N) = %.2f s (paper: ~1.6 s)\n",
      depth_2m, depth_2m * kHop / 1000.0);
  std::printf(
      "Check: unsync staleness <= depth*T; sync staleness << unsync (a few "
      "hop times, not interval-bound); depth falls as fanout grows.\n");
  csv.Write(table, "somo_latency");
  csv.Write(fanout_table, "somo_fanout");
  return 0;
}
