// Kernel scale sweep: event-loop throughput at 1.2k / 5k / 10k hosts.
//
// Drives the same synthetic protocol mix (heartbeat periodics, SOMO report
// periodics, transport delivery one-shots, failure-timeout rearm churn)
// through three schedulers:
//
//   wheel   sim::EventQueue, hierarchical timing wheel (the default)
//   heap    sim::EventQueue, retained binary-heap backend
//   legacy  a bench-local copy of the pre-wheel queue: std::function
//           callbacks in an unordered_map keyed by id, a lazily-compacted
//           binary heap, and periodic timers built from the old
//           shared_ptr<bool> + self-rescheduling-wrapper pattern
//
// The wheel additionally runs in "batched" mode — one PopAllUpTo drain per
// window instead of a peek+pop virtual round trip per event, which is what
// Simulation::RunUntil ships — so the JSON records the batching delta on
// the identical event stream.
//
// All three drivers consume the identical logical event stream — the
// (time, seq) allocation discipline of the new queue was designed to match
// the legacy wrapper exactly — so per-scale event counts agree and the
// ns/event ratio legacy : wheel is a true before/after speedup.
//
// Two further sweeps ride along:
//
//   sharded_scales   the sim::ShardedSimulation lockstep kernel at 1/2/4/8
//                    shards on 10k and 50k hosts. The headline number is
//                    critical-path throughput — sum over windows of
//                    (slowest shard busy + barrier exchange) — i.e. the
//                    wall time on a machine with >= shards free cores. The
//                    design makes results bit-identical for any thread
//                    count, so the projection is sound on small hosts (the
//                    JSON records `cpus` for the reader).
//   wheel_layouts    a bench-local generic hierarchical wheel pricing the
//                    bucket-layout choice: 3 levels x 256 buckets (the
//                    production shape) against 4 levels x 64 on an
//                    identical self-rescheduling timer stream.
//   wide_area        8 geographic regions, inter-region >= 150 ms: fixed
//                    56 ms lockstep windows against the measured per-pair
//                    lookahead matrix on the same workload — the window
//                    reduction check_bench_scale.py gates.
//   run_phase_breakdown  a four-rung ladder (wheel pop / callback dispatch /
//                    transport resolve / metrics) over one identical event
//                    stream; adjacent deltas price each run-loop phase.
//
// Usage: bench_kernel [--json PATH] [--reps N] [--quick]
#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dht/ring.h"
#include "obs/json.h"
#include "sim/event_queue.h"
#include "sim/sharded.h"
#include "sim/simulation.h"
#include "somo/report.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/rng.h"

namespace p2p::bench {
namespace {

// ---------------------------------------------------------------------------
// Legacy queue: faithful copy of the pre-wheel src/sim/event_queue.{h,cc}.
// Kept bench-local so the repo's production tree carries exactly one
// reference backend (EventQueue's retained heap); this copy exists to price
// the allocation behaviour the rewrite removed.
// ---------------------------------------------------------------------------
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  std::uint64_t Schedule(double t, Callback cb) {
    const std::uint64_t id = next_id_++;
    heap_.push_back(Entry{t, next_seq_++, id});
    std::push_heap(heap_.begin(), heap_.end());
    callbacks_.emplace(id, std::move(cb));
    ++live_count_;
    return id;
  }

  bool Cancel(std::uint64_t id) {
    const auto it = callbacks_.find(id);
    if (it == callbacks_.end()) return false;
    callbacks_.erase(it);
    --live_count_;
    CompactIfMostlyGarbage();
    return true;
  }

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }
  std::size_t heap_footprint() const { return heap_.size(); }

  double PeekTime() {
    DropCancelledHead();
    return heap_.front().time;
  }

  struct Fired {
    double time;
    std::uint64_t id;
    Callback cb;
  };
  Fired Pop() {
    DropCancelledHead();
    const Entry e = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    auto it = callbacks_.find(e.id);
    Fired fired{e.time, e.id, std::move(it->second)};
    callbacks_.erase(it);
    --live_count_;
    return fired;
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    std::uint64_t id;
    bool operator<(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void DropCancelledHead() {
    while (!heap_.empty() &&
           callbacks_.find(heap_.front().id) == callbacks_.end()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
    }
  }

  void CompactIfMostlyGarbage() {
    if (heap_.size() - live_count_ <= heap_.size() / 2) return;
    std::erase_if(heap_, [this](const Entry& e) {
      return callbacks_.find(e.id) == callbacks_.end();
    });
    std::make_heap(heap_.begin(), heap_.end());
  }

  std::vector<Entry> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::size_t live_count_ = 0;
};

// ---------------------------------------------------------------------------
// Drivers: a uniform five-call surface over each scheduler. The workload
// below is templated on this so all three runs execute the same code.
// ---------------------------------------------------------------------------

// sim::EventQueue under either backend, using the first-class periodic API.
class KernelDriver {
 public:
  using Id = sim::EventId;
  static constexpr Id kNone = sim::kInvalidEventId;

  explicit KernelDriver(sim::SchedulerKind kind) : q_(kind) {}

  double now() const { return now_; }

  template <class F>
  void Every(double period, double first_delay, F fn) {
    q_.SchedulePeriodic(now_ + first_delay, period, std::move(fn));
  }

  template <class F>
  Id After(double dt, F fn) {
    return q_.Schedule(now_ + dt, std::move(fn));
  }

  // The heartbeat suppress pattern: push an armed timeout back without
  // cancel/reschedule churn. MakeFn is only invoked when the timeout is
  // not currently armed.
  template <class MakeFn>
  void PushBack(Id& id, double t, MakeFn make) {
    if (id != kNone && q_.Rearm(id, t)) return;
    id = q_.Schedule(t, make());
  }

  bool StepUpTo(double horizon) {
    if (q_.empty() || q_.PeekTime() > horizon) return false;
    auto fired = q_.Pop();
    now_ = fired.time;
    if (fired.is_periodic()) {
      (*fired.periodic)();
      q_.FinishPeriodic(fired.id);
    } else {
      fired.cb();
    }
    return true;
  }

  // Batched drain (Simulation::RunUntil's production path): one virtual
  // PopAllUpTo call for the whole window, periodics re-armed internally.
  // `on_event` runs after each callback so the caller can count/sample.
  template <class OnEvent>
  std::size_t DrainUpTo(double horizon, OnEvent on_event) {
    std::size_t n = 0;
    q_.PopAllUpTo(horizon, [&](sim::EventQueue::Fired& fired) {
      now_ = fired.time;
      ++n;
      if (fired.is_periodic()) {
        (*fired.periodic)();
      } else {
        fired.cb();
      }
      on_event();
    });
    return n;
  }

  std::size_t live() const { return q_.size(); }
  std::size_t footprint() const { return q_.heap_footprint(); }

 private:
  sim::EventQueue q_;
  double now_ = 0.0;
};

// The pre-wheel stack: periodic timers are the old recursive wrapper, and
// PushBack is the Cancel + re-Schedule churn the Rearm API replaced.
class LegacyDriver {
 public:
  using Id = std::uint64_t;
  static constexpr Id kNone = 0;

  double now() const { return now_; }

  template <class F>
  void Every(double period, double first_delay, F fn) {
    Arm(period, now_ + first_delay, std::make_shared<bool>(true),
        std::make_shared<std::function<void()>>(std::move(fn)));
  }

  template <class F>
  Id After(double dt, F fn) {
    return q_.Schedule(now_ + dt, std::move(fn));
  }

  template <class MakeFn>
  void PushBack(Id& id, double t, MakeFn make) {
    if (id != kNone) q_.Cancel(id);
    id = q_.Schedule(t, make());
  }

  bool StepUpTo(double horizon) {
    if (q_.empty() || q_.PeekTime() > horizon) return false;
    auto fired = q_.Pop();
    now_ = fired.time;
    fired.cb();
    return true;
  }

  std::size_t live() const { return q_.size(); }
  std::size_t footprint() const { return q_.heap_footprint(); }

 private:
  void Arm(double period, double next, std::shared_ptr<bool> alive,
           std::shared_ptr<std::function<void()>> cb) {
    q_.Schedule(next, [this, period, next, alive, cb] {
      if (!*alive) return;
      (*cb)();
      if (*alive) Arm(period, next + period, alive, cb);
    });
  }

  LegacyEventQueue q_;
  double now_ = 0.0;
};

// ---------------------------------------------------------------------------
// Workload: per host, a 1 Hz heartbeat that fans out two transport
// deliveries and pushes a failure timeout back (the suppress pattern), and
// a 0.5 Hz SOMO report that schedules one aggregation hop. Latencies come
// from the host-indexed part of the seed so every driver sees the same
// virtual-time stream without sharing an Rng consumption order.
// ---------------------------------------------------------------------------
struct RunStats {
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;  // workload checksum: must match across drivers
  double wall_ns = 0.0;
  std::size_t peak_live = 0;
  std::size_t peak_footprint = 0;

  double ns_per_event() const {
    return events == 0 ? 0.0 : wall_ns / static_cast<double>(events);
  }
  double events_per_sec() const {
    return wall_ns == 0.0 ? 0.0
                          : static_cast<double>(events) * 1e9 / wall_ns;
  }
};

template <class Driver>
struct Workload {
  explicit Workload(Driver& d, std::size_t hosts, std::uint64_t seed)
      : driver(d), rng(seed) {
    timeout.assign(hosts, Driver::kNone);
    // Per-host fixed latency palette, drawn up front so scheduling-time
    // RNG draws cannot depend on the driver's internal callback shapes.
    lat.reserve(hosts);
    for (std::size_t h = 0; h < hosts; ++h)
      lat.push_back(rng.Uniform(5.0, 150.0));
    for (std::size_t h = 0; h < hosts; ++h) {
      const double phase = rng.Uniform(0.0, 1000.0);
      driver.Every(1000.0, phase, [this, h] { Heartbeat(h); });
      driver.Every(2000.0, phase + rng.Uniform(0.0, 1000.0),
                   [this, h] { SomoReport(h); });
      // Bandwidth-probe tick: a fast pure timer, like the packet-pair
      // probe pacing in bwest. No fan-out — it prices the periodic fire
      // path itself.
      driver.Every(500.0, rng.Uniform(0.0, 500.0), [this] { ++probes; });
    }
  }

  // What a transport delivery closure actually carries in the protocol
  // stack: addressing, size, and latency bookkeeping. At 32 bytes the
  // whole closure (this + h + Msg) stays inside InlineFn's 48-byte buffer;
  // std::function's 16-byte SBO spills it to the heap — the production
  // difference the bench must price.
  struct Msg {
    std::uint32_t src, dst, bytes;
    float latency;
  };

  void Heartbeat(std::size_t h) {
    for (std::uint32_t k = 0; k < 2; ++k) {
      const Msg m{static_cast<std::uint32_t>(h),
                  static_cast<std::uint32_t>((h + k + 1) % timeout.size()),
                  64, static_cast<float>(lat[h])};
      driver.After(lat[h] + 7.0 * k, [this, h, m] { Delivered(h, m); });
    }
  }

  void Delivered(std::size_t h, Msg m) {
    ++delivered;
    bytes_delivered += m.bytes;
    // Failure detector reset on every received heartbeat — the dominant
    // churn pattern in the real protocol stack. Fires only if three
    // heartbeat intervals go silent.
    driver.PushBack(timeout[h], driver.now() + 3000.0, [this, h, m] {
      return [this, h, m] { Expired(h, m.src); };
    });
  }

  void SomoReport(std::size_t h) {
    const Msg m{static_cast<std::uint32_t>(h),
                static_cast<std::uint32_t>(h / 2), 256,
                static_cast<float>(lat[h])};
    driver.After(0.5 * lat[h] + 10.0, [this, m] {
      ++delivered;
      bytes_delivered += m.bytes;
    });
  }

  void Expired(std::size_t h, std::uint32_t /*suspect*/) {
    timeout[h] = Driver::kNone;
    ++expired;
  }

  Driver& driver;
  util::Rng rng;
  std::vector<double> lat;
  std::vector<typename Driver::Id> timeout;
  std::uint64_t delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t probes = 0;
  std::uint64_t expired = 0;
};

template <class Driver>
RunStats RunOne(Driver& driver, std::size_t hosts, double horizon,
                std::uint64_t seed) {
  Workload<Driver> w(driver, hosts, seed);
  RunStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  while (driver.StepUpTo(horizon)) {
    ++stats.events;
    if ((stats.events & 1023u) == 0) {
      stats.peak_live = std::max(stats.peak_live, driver.live());
      stats.peak_footprint = std::max(stats.peak_footprint,
                                      driver.footprint());
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  stats.peak_live = std::max(stats.peak_live, driver.live());
  stats.peak_footprint = std::max(stats.peak_footprint, driver.footprint());
  stats.delivered = w.delivered;
  P2P_CHECK_MSG(w.expired == 0, "suppress pattern must hold timeouts back");
  return stats;
}

// Same workload, but drained through PopAllUpTo in one batched call.
RunStats RunOneBatched(KernelDriver& driver, std::size_t hosts,
                       double horizon, std::uint64_t seed) {
  Workload<KernelDriver> w(driver, hosts, seed);
  RunStats stats;
  std::uint64_t n = 0;
  const auto t0 = std::chrono::steady_clock::now();
  stats.events = driver.DrainUpTo(horizon, [&] {
    if ((++n & 1023u) == 0) {
      stats.peak_live = std::max(stats.peak_live, driver.live());
      stats.peak_footprint = std::max(stats.peak_footprint,
                                      driver.footprint());
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  stats.peak_live = std::max(stats.peak_live, driver.live());
  stats.peak_footprint = std::max(stats.peak_footprint, driver.footprint());
  stats.delivered = w.delivered;
  P2P_CHECK_MSG(w.expired == 0, "suppress pattern must hold timeouts back");
  return stats;
}

template <class MakeDriver>
RunStats BestOf(int reps, std::size_t hosts, double horizon,
                std::uint64_t seed, MakeDriver make) {
  RunStats best;
  for (int r = 0; r < reps; ++r) {
    auto driver = make();
    RunStats s = RunOne(*driver, hosts, horizon, seed);
    if (r == 0 || s.wall_ns < best.wall_ns) best = s;
  }
  return best;
}

RunStats BestOfBatched(int reps, std::size_t hosts, double horizon,
                       std::uint64_t seed) {
  RunStats best;
  for (int r = 0; r < reps; ++r) {
    KernelDriver driver(p2p::sim::SchedulerKind::kTimingWheel);
    RunStats s = RunOneBatched(driver, hosts, horizon, seed);
    if (r == 0 || s.wall_ns < best.wall_ns) best = s;
  }
  return best;
}

struct ScaleResult {
  std::size_t hosts = 0;
  double horizon = 0.0;
  RunStats wheel, batched, heap, legacy;
};

// ---------------------------------------------------------------------------
// Sharded lockstep sweep: the production ShardedSimulation driving the same
// protocol shape (heartbeat fan-out + SOMO hop + probe tick per host), with
// one of the two heartbeat deliveries aimed across the ring so multi-shard
// runs push real traffic through the mailbox barrier. Every delay is
// 56 ms + palette so local and cross-shard sends share one formula — the
// fired-event stream is identical at every shard count, which the sweep
// CHECKs (the sharded column measures the kernel, not a different load).
// ---------------------------------------------------------------------------
struct ShardedStats {
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  double wall_ns = 0.0;
  double critical_ns = 0.0;
  std::size_t windows = 0;
  std::size_t cross = 0;

  double critical_ns_per_event() const {
    return events == 0 ? 0.0 : critical_ns / static_cast<double>(events);
  }
  double events_per_sec_critical() const {
    return critical_ns == 0.0
               ? 0.0
               : static_cast<double>(events) * 1e9 / critical_ns;
  }
};

inline double U01(std::uint64_t x) {
  return static_cast<double>(p2p::util::Mix64(x) >> 11) * 0x1.0p-53;
}

ShardedStats RunShardedOnce(std::size_t hosts, std::size_t shards,
                            double horizon, std::uint64_t seed) {
  sim::ShardedOptions opts;
  opts.shards = shards;
  opts.lookahead_ms = 56.0;  // the transit-stub structural bound
  opts.seed = seed;
  sim::ShardedSimulation ssim(opts);
  std::vector<std::uint32_t> shard_of(hosts);
  for (std::size_t h = 0; h < hosts; ++h)
    shard_of[h] = static_cast<std::uint32_t>(h * shards / hosts);

  // Per-shard tallies: callbacks only ever touch their own shard's slot.
  std::vector<std::uint64_t> delivered(shards, 0);

  struct HostCtx {
    sim::ShardedSimulation* ssim;
    const std::vector<std::uint32_t>* shard_of;
    std::vector<std::uint64_t>* delivered;
    std::size_t hosts;
    std::uint64_t seed;
  };
  auto ctx = std::make_unique<HostCtx>(
      HostCtx{&ssim, &shard_of, &delivered, hosts, seed});

  const auto send = [](HostCtx* c, std::size_t src, std::size_t dst,
                       double delay) {
    const std::uint32_t s = (*c->shard_of)[src];
    const std::uint32_t d = (*c->shard_of)[dst];
    sim::Simulation& ssrc = c->ssim->shard(s);
    auto* tally = &(*c->delivered)[d];
    if (d == s) {
      ssrc.After(delay, [tally] { ++*tally; });
    } else {
      c->ssim->Post(s, d, ssrc.now() + delay, [tally] { ++*tally; });
    }
  };

  for (std::size_t h = 0; h < hosts; ++h) {
    const std::uint32_t s = shard_of[h];
    sim::Simulation& shard_sim = ssim.shard(s);
    // Stateless per-host palette (no RNG during the run, and no draw-order
    // coupling to the shard layout).
    const double lat = 5.0 + 145.0 * U01(seed ^ (h * 0x9e3779b97f4a7c15ULL));
    const double phase = 1000.0 * U01(seed ^ (h + 0xa076'1d64'78bd'642fULL));
    HostCtx* c = ctx.get();
    shard_sim.Every(1000.0, phase, [c, h, lat, send] {
      // One near delivery (same shard under the block layout, except at
      // the boundary) and one far delivery (opposite side of the host
      // ring: cross-shard at every shard count > 1).
      send(c, h, (h + 1) % c->hosts, 56.0 + lat);
      send(c, h, (h + c->hosts / 2 + 1) % c->hosts, 63.0 + lat);
    });
    shard_sim.Every(2000.0, phase + 0.5 * lat,
                    [c, h, lat, send] { send(c, h, h / 2, 56.0 + 0.5 * lat); });
  }

  ShardedStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  stats.events = ssim.RunUntil(horizon);
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  stats.critical_ns = ssim.critical_path_ns();
  stats.windows = ssim.windows();
  stats.cross = ssim.cross_shard_messages();
  for (const std::uint64_t d : delivered) stats.delivered += d;
  return stats;
}

struct ShardedScaleResult {
  std::size_t hosts = 0;
  double horizon = 0.0;
  std::vector<std::pair<std::size_t, ShardedStats>> runs;  // by shard count
};

// ---------------------------------------------------------------------------
// Wide-area lookahead scenario: 8 geographic regions on a ring, intra-region
// delay 56 ms + palette, inter-region >= 150 ms (continental links). Hosts
// block-map to regions and regions block-map to shards, so every cross-shard
// channel is a cross-region channel and a measured per-pair lookahead bound
// is the region latency floor (>= 152.5 ms) instead of the 56 ms structural
// constant the fixed path must assume. Same workload both ways — only the
// window schedule changes — so the row prices exactly what lookahead
// extraction buys: horizon/56 windows collapse to roughly horizon/162.
//
// (The multihomed 10k preset in `sharded_scales` cannot show this: its
// domains all meet the same transit core, so the true minimum cross-shard
// latency sits at the structural bound and extraction is a no-op there.)
// ---------------------------------------------------------------------------
constexpr std::size_t kWideRegions = 8;
// Minimum additive part of every send delay on top of the region base
// (the SOMO hop adds 0.5 * lat, lat >= 5).
constexpr double kWideMinAddMs = 2.5;

double RegionDelayMs(std::size_t r1, std::size_t r2) {
  if (r1 == r2) return 56.0;
  const std::size_t d = r1 > r2 ? r1 - r2 : r2 - r1;
  const std::size_t ring = std::min(d, kWideRegions - d);
  return 150.0 + 10.0 * static_cast<double>(ring);
}

struct WideAreaStats {
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::size_t windows = 0;
  std::size_t cross = 0;
  double critical_ns = 0.0;
};

WideAreaStats RunWideAreaOnce(std::size_t hosts, std::size_t shards,
                              double horizon, std::uint64_t seed,
                              bool extracted) {
  sim::ShardedOptions opts;
  opts.shards = shards;
  opts.lookahead_ms = 56.0;  // the structural bound, geography-blind
  opts.seed = seed;
  if (extracted && shards > 1) {
    // What net::ExtractLookahead would measure here: per shard pair, the
    // cheapest inter-region base delay plus the smallest additive part any
    // send carries.
    opts.lookahead_matrix.assign(shards * shards, 0.0);
    for (std::size_t r1 = 0; r1 < kWideRegions; ++r1) {
      for (std::size_t r2 = 0; r2 < kWideRegions; ++r2) {
        const std::size_t s1 = r1 * shards / kWideRegions;
        const std::size_t s2 = r2 * shards / kWideRegions;
        if (s1 == s2) continue;
        double& cell = opts.lookahead_matrix[s1 * shards + s2];
        const double bound = RegionDelayMs(r1, r2) + kWideMinAddMs;
        if (cell == 0.0 || bound < cell) cell = bound;
      }
    }
  }
  sim::ShardedSimulation ssim(opts);

  std::vector<std::uint32_t> region_of(hosts);
  std::vector<std::uint32_t> shard_of(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    region_of[h] = static_cast<std::uint32_t>(h * kWideRegions / hosts);
    shard_of[h] = static_cast<std::uint32_t>(region_of[h] * shards /
                                             kWideRegions);
  }
  std::vector<std::uint64_t> delivered(shards, 0);

  struct HostCtx {
    sim::ShardedSimulation* ssim;
    const std::vector<std::uint32_t>* region_of;
    const std::vector<std::uint32_t>* shard_of;
    std::vector<std::uint64_t>* delivered;
    std::size_t hosts;
  };
  auto ctx = std::make_unique<HostCtx>(
      HostCtx{&ssim, &region_of, &shard_of, &delivered, hosts});

  // `extra` rides on top of the region base delay and is >= kWideMinAddMs.
  const auto send = [](HostCtx* c, std::size_t src, std::size_t dst,
                       double extra) {
    const std::uint32_t s = (*c->shard_of)[src];
    const std::uint32_t d = (*c->shard_of)[dst];
    const double delay =
        RegionDelayMs((*c->region_of)[src], (*c->region_of)[dst]) + extra;
    sim::Simulation& ssrc = c->ssim->shard(s);
    auto* tally = &(*c->delivered)[d];
    if (d == s) {
      ssrc.After(delay, [tally] { ++*tally; });
    } else {
      c->ssim->Post(s, d, ssrc.now() + delay, [tally] { ++*tally; });
    }
  };

  for (std::size_t h = 0; h < hosts; ++h) {
    sim::Simulation& shard_sim = ssim.shard(shard_of[h]);
    const double lat = 5.0 + 145.0 * U01(seed ^ (h * 0x9e3779b97f4a7c15ULL));
    const double phase = 1000.0 * U01(seed ^ (h + 0xa076'1d64'78bd'642fULL));
    HostCtx* c = ctx.get();
    shard_sim.Every(1000.0, phase, [c, h, lat, send] {
      send(c, h, (h + 1) % c->hosts, lat);                  // near neighbour
      send(c, h, (h + c->hosts / 2 + 1) % c->hosts, 7.0 + lat);  // far side
    });
    shard_sim.Every(2000.0, phase + 0.5 * lat,
                    [c, h, lat, send] { send(c, h, h / 2, 0.5 * lat); });
  }

  WideAreaStats stats;
  stats.events = ssim.RunUntil(horizon);
  stats.critical_ns = ssim.critical_path_ns();
  stats.windows = ssim.windows();
  stats.cross = ssim.cross_shard_messages();
  for (const std::uint64_t d : delivered) stats.delivered += d;
  return stats;
}

struct WideAreaResult {
  std::size_t hosts = 0;
  double horizon = 0.0;
  struct Run {
    std::size_t shards = 0;
    WideAreaStats fixed, extracted;
    double window_reduction() const {
      return extracted.windows == 0
                 ? 0.0
                 : static_cast<double>(fixed.windows) /
                       static_cast<double>(extracted.windows);
    }
  };
  std::vector<Run> runs;
};

// ---------------------------------------------------------------------------
// Run-phase breakdown: where a serial run-loop nanosecond actually goes.
// Four rungs drive the exact same fired-event stream (CHECKed) and add one
// cost layer each, so adjacent deltas price a phase by subtraction:
//
//   wheel_pop          pop/re-arm/schedule machinery, near-empty callbacks
//   callback_dispatch  + real delivery closures (payload capture, failure-
//                        detector push-back via Rearm)
//   transport_resolve  + sends routed through the Transport bus (fault and
//                        delay resolution, accounting, in-flight slab)
//   metrics            + per-send/delivery registry counters enabled
// ---------------------------------------------------------------------------
enum class BreakPhase : int {
  kWheelPop = 0,
  kCallback = 1,
  kTransport = 2,
  kMetrics = 3,
};

struct BreakdownStats {
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  double wall_ns = 0.0;
  double ns_per_event() const {
    return events == 0 ? 0.0 : wall_ns / static_cast<double>(events);
  }
};

BreakdownStats RunBreakdownOnce(BreakPhase phase, std::size_t hosts,
                                double horizon, std::uint64_t seed) {
  sim::Simulation sim(seed);
  if (phase == BreakPhase::kMetrics) sim.EnableMetrics();

  struct Ctx {
    sim::Simulation* sim;
    BreakPhase phase;
    std::size_t hosts;
    std::vector<double> lat;
    std::vector<sim::EventId> timeout;
    std::uint64_t delivered = 0;
    std::uint64_t bytes = 0;
  };
  auto ctx = std::make_unique<Ctx>();
  ctx->sim = &sim;
  ctx->phase = phase;
  ctx->hosts = hosts;
  ctx->timeout.assign(hosts, sim::kInvalidEventId);
  ctx->lat.reserve(hosts);
  for (std::size_t h = 0; h < hosts; ++h)
    ctx->lat.push_back(5.0 + 145.0 * U01(seed ^ (h * 0x9e3779b97f4a7c15ULL)));

  struct Msg {
    std::uint32_t src, dst, bytes;
    float latency;
  };
  // The suppress pattern (Delivered in the scale sweep's Workload): reset
  // the failure timeout on every heartbeat; it never fires within the
  // horizon, so it adds Rearm work but no events.
  const auto delivered_cb = [](Ctx* c, std::size_t h, const Msg& m) {
    ++c->delivered;
    c->bytes += m.bytes;
    const double t = c->sim->now() + 3000.0;
    if (c->timeout[h] == sim::kInvalidEventId ||
        !c->sim->Rearm(c->timeout[h], t)) {
      c->timeout[h] = c->sim->At(t, [c, h] {
        c->timeout[h] = sim::kInvalidEventId;
      });
    }
  };

  for (std::size_t h = 0; h < hosts; ++h) {
    const double phase_ms = 1000.0 * U01(seed ^ (h + 0xa076'1d64'78bd'642fULL));
    const double lat = ctx->lat[h];
    Ctx* c = ctx.get();
    sim.Every(1000.0, phase_ms, [c, h, lat, delivered_cb] {
      const Msg m{static_cast<std::uint32_t>(h),
                  static_cast<std::uint32_t>((h + 1) % c->hosts), 64,
                  static_cast<float>(lat)};
      switch (c->phase) {
        case BreakPhase::kWheelPop:
          // Same delivery event, empty body: the floor.
          c->sim->After(lat, [] {});
          break;
        case BreakPhase::kCallback:
          c->sim->After(lat, [c, h, m, delivered_cb] {
            delivered_cb(c, h, m);
          });
          break;
        case BreakPhase::kTransport:
        case BreakPhase::kMetrics: {
          sim::Message msg;
          msg.src_host = h;
          msg.dst_host = m.dst;
          msg.protocol = sim::Protocol::kOther;
          msg.bytes = m.bytes;
          sim::SendOptions so;
          so.delay_override_ms = lat;  // identical delivery times
          c->sim->transport().Send(msg,
                                   [c, h, m, delivered_cb] {
                                     delivered_cb(c, h, m);
                                   },
                                   so);
          break;
        }
      }
    });
  }

  BreakdownStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  stats.events = sim.RunUntil(horizon);
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  stats.delivered = ctx->delivered;
  return stats;
}

struct BreakdownResult {
  std::size_t hosts = 0;
  double horizon = 0.0;
  // Indexed by BreakPhase.
  std::array<BreakdownStats, 4> phases;
};

constexpr const char* kBreakPhaseNames[4] = {
    "wheel_pop", "callback_dispatch", "transport_resolve", "metrics"};

// ---------------------------------------------------------------------------
// Per-host protocol memory (PR 9): the ring's routing state plus a full
// SOMO root aggregate, measured against the pre-SoA layouts — the seed's
// dense per-node prefix/finger allocations and the AoS aggregate
// (vector<NodeReport> + per-record coord/degree heap), both computable
// exactly from the records the sweep builds. check_bench_scale.py gates
// the 10k row on --max-bytes-per-host and the >=2x reduction.
// ---------------------------------------------------------------------------
struct MemoryScaleResult {
  std::size_t hosts = 0;
  std::size_t ring_bytes = 0;
  std::size_t aggregate_bytes = 0;
  std::size_t presoa_ring_bytes = 0;
  std::size_t presoa_aggregate_bytes = 0;
  double join_ms = 0.0;  // batch bootstrap wall time at this scale

  double bytes_per_host() const {
    return static_cast<double>(ring_bytes + aggregate_bytes) /
           static_cast<double>(hosts);
  }
  double presoa_bytes_per_host() const {
    return static_cast<double>(presoa_ring_bytes + presoa_aggregate_bytes) /
           static_cast<double>(hosts);
  }
  double reduction() const {
    return presoa_bytes_per_host() / bytes_per_host();
  }
};

MemoryScaleResult RunMemoryScale(std::size_t hosts) {
  MemoryScaleResult r;
  r.hosts = hosts;

  p2p::dht::Ring ring(16);
  const auto t0 = std::chrono::steady_clock::now();
  ring.JoinBatchHashed(0, hosts);
  r.join_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  r.ring_bytes = ring.MemoryBytes();
  // The seed allocated a dense 16x16 prefix table and a 64-entry inline
  // finger array per node, regardless of fill (leafsets were already
  // compact and carry over unchanged).
  r.presoa_ring_bytes =
      r.ring_bytes -
      [&ring] {
        std::size_t soa = 0;
        for (p2p::dht::NodeIndex n = 0; n < ring.size(); ++n)
          soa += ring.node(n).prefix().HeapBytes() +
                 ring.node(n).fingers().HeapBytes();
        return soa;
      }() +
      hosts * (16 * 16 + 64) * sizeof(p2p::dht::LeafsetEntry);

  p2p::somo::AggregateReport agg;
  std::size_t aos_heap = 0;
  for (std::size_t n = 0; n < hosts; ++n) {
    p2p::somo::NodeReport rep;
    rep.node = static_cast<p2p::dht::NodeIndex>(n);
    rep.host = static_cast<p2p::net::HostIdx>(n);
    rep.generated_at = static_cast<double>(n);
    rep.up_kbps = 100.0;
    rep.down_kbps = 500.0;
    rep.capacity = static_cast<double>(n % 100);
    if (n % 3 != 0)
      for (std::size_t d = 0; d < 2 + n % 3; ++d)
        rep.coordinates.push_back(static_cast<double>(d));
    if (n % 4 == 0) rep.degrees.taken.push_back({});
    if (n % 2 == 0) {
      rep.telemetry.msgs_sent = n;
      rep.telemetry.sampled_at = rep.generated_at;
    }
    aos_heap += rep.coordinates.capacity() * sizeof(double) +
                rep.degrees.taken.capacity() * sizeof(p2p::somo::DegreeSlot);
    agg.Add(rep);
  }
  r.aggregate_bytes = agg.MemoryBytes();
  // Pre-SoA aggregate: vector<NodeReport> with each record's own heap.
  r.presoa_aggregate_bytes =
      sizeof(p2p::somo::AggregateReport) +
      hosts * sizeof(p2p::somo::NodeReport) + aos_heap;
  return r;
}

// ---------------------------------------------------------------------------
// Wheel-layout model: a stripped-down hierarchical wheel generic over
// (levels, bits per level), pricing what the production 3x256 shape trades
// against a 4x64 alternative — per-level occupancy-bitmap scans and bucket
// residency on one side, cascade frequency (events touched once per level
// crossed) on the other. Schedule/drain only; cancel, re-arm, periodics
// and the due-run cursor are layout-independent and stay out of the model.
// ---------------------------------------------------------------------------
template <int Levels, int Bits>
class LayoutWheel {
 public:
  static_assert(Levels * Bits <= 32, "tick range");
  static constexpr int kBuckets = 1 << Bits;
  static constexpr std::uint64_t kMask = kBuckets - 1;

  void Schedule(double t, std::uint32_t tag) {
    Place(Item{t, next_seq_++, tag});
    ++size_;
  }

  bool empty() const { return size_ == 0; }
  std::uint64_t cascaded() const { return cascaded_; }

  template <class Fn>
  std::uint64_t DrainUpTo(double t_end, Fn fn) {
    std::uint64_t n = 0;
    while (size_ > 0) {
      if (due_cursor_ < due_.size()) {
        const Item& it = due_[due_cursor_];
        if (it.time > t_end) break;
        ++due_cursor_;
        --size_;
        ++n;
        fn(it.time, it.tag);
        if (due_cursor_ == due_.size()) {
          due_.clear();
          due_cursor_ = 0;
        }
        continue;
      }
      if (!Advance()) break;
    }
    return n;
  }

 private:
  struct Item {
    double time;
    std::uint64_t seq;
    std::uint32_t tag;
  };

  static std::uint64_t TickOf(double t) {
    return static_cast<std::uint64_t>(t);
  }

  void Place(Item it) {
    const std::uint64_t tick = TickOf(it.time);
    if (tick <= current_tick_) {
      InsertDue(it);
      return;
    }
    for (int l = 0; l < Levels; ++l) {
      const int shift = (l + 1) * Bits;
      if (shift < 64 && (tick >> shift) != (current_tick_ >> shift)) continue;
      const int idx =
          l * kBuckets + static_cast<int>((tick >> (l * Bits)) & kMask);
      buckets_[idx].push_back(it);
      occ_[l] |= Word(idx % kBuckets);
      return;
    }
    overflow_.push_back(it);
    std::push_heap(overflow_.begin(), overflow_.end(), Later);
  }

  void InsertDue(Item it) {
    // Sorted insert past the served prefix (due runs are short).
    auto pos = due_.begin() + static_cast<std::ptrdiff_t>(due_cursor_);
    while (pos != due_.end() &&
           (pos->time < it.time ||
            (pos->time == it.time && pos->seq < it.seq))) {
      ++pos;
    }
    due_.insert(pos, it);
  }

  // Move the wheel clock to the next occupied bucket; serve level 0 as the
  // due run, cascade higher levels down. Returns false when fully drained
  // into overflow-less emptiness.
  bool Advance() {
    for (int l = 0; l < Levels; ++l) {
      const int idx = FindFirst(l);
      if (idx < 0) continue;
      const std::uint64_t span = std::uint64_t{1} << (l * Bits);
      const std::uint64_t keep = ~((span << Bits) - 1);
      current_tick_ = (current_tick_ & keep) |
                      (static_cast<std::uint64_t>(idx) * span);
      auto& b = buckets_[l * kBuckets + idx];
      std::vector<Item> items;
      items.swap(b);
      occ_[l] &= ~Word(idx);
      if (l == 0) {
        std::sort(items.begin(), items.end(), [](const Item& a,
                                                 const Item& b2) {
          if (a.time != b2.time) return a.time < b2.time;
          return a.seq < b2.seq;
        });
        for (Item& it : items) InsertDue(it);
      } else {
        cascaded_ += items.size();
        for (Item& it : items) Place(it);
      }
      return true;
    }
    if (overflow_.empty()) return false;
    current_tick_ = TickOf(overflow_.front().time);
    const int top_shift = Levels * Bits;
    while (!overflow_.empty() &&
           (TickOf(overflow_.front().time) >> top_shift) ==
               (current_tick_ >> top_shift)) {
      std::pop_heap(overflow_.begin(), overflow_.end(), Later);
      Place(overflow_.back());
      overflow_.pop_back();
    }
    return true;
  }

  int FindFirst(int level) const {
    const auto& words = occ_[level];
    for (int w = 0; w < kWords; ++w) {
      if (words.bits[w] == 0) continue;
      return w * 64 + std::countr_zero(words.bits[w]);
    }
    return -1;
  }

  static bool Later(const Item& a, const Item& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  static constexpr int kWords = (kBuckets + 63) / 64;
  struct Occ {
    std::uint64_t bits[kWords] = {};
    Occ& operator|=(const Occ& o) {
      for (int w = 0; w < kWords; ++w) bits[w] |= o.bits[w];
      return *this;
    }
    Occ& operator&=(const Occ& o) {
      for (int w = 0; w < kWords; ++w) bits[w] &= o.bits[w];
      return *this;
    }
    Occ operator~() const {
      Occ r;
      for (int w = 0; w < kWords; ++w) r.bits[w] = ~bits[w];
      return r;
    }
  };
  static Occ Word(int idx) {
    Occ o;
    o.bits[idx / 64] = std::uint64_t{1} << (idx % 64);
    return o;
  }

  std::array<std::vector<Item>, static_cast<std::size_t>(Levels) * kBuckets>
      buckets_;
  std::array<Occ, Levels> occ_;
  std::vector<Item> due_;
  std::size_t due_cursor_ = 0;
  std::vector<Item> overflow_;
  std::uint64_t current_tick_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t size_ = 0;
  std::uint64_t cascaded_ = 0;
};

struct LayoutStats {
  std::uint64_t events = 0;
  std::uint64_t cascaded = 0;
  double wall_ns = 0.0;
  double checksum = 0.0;

  double ns_per_event() const {
    return events == 0 ? 0.0 : wall_ns / static_cast<double>(events);
  }
};

// Self-rescheduling timer storm: `timers` chains, each hopping through a
// fixed delay palette spanning all wheel levels (sub-tick to 100 s), so
// both layouts field the same stream and differ only in where entries sit
// and how often they cascade.
template <class Wheel>
LayoutStats RunLayout(std::size_t timers, double horizon,
                      std::uint64_t seed) {
  static constexpr double kPalette[] = {6.25,   17.0,   42.0,    95.0,
                                        140.0,  500.0,  1000.0,  3000.0,
                                        9000.0, 30000.0, 100000.0};
  static constexpr std::size_t kP = sizeof(kPalette) / sizeof(kPalette[0]);
  Wheel w;
  LayoutStats stats;
  for (std::size_t i = 0; i < timers; ++i) {
    w.Schedule(1000.0 * U01(seed ^ (i * 0x2545f4914f6cdd1dULL)),
               static_cast<std::uint32_t>(i % kP));
  }
  const auto t0 = std::chrono::steady_clock::now();
  while (!w.empty()) {
    const std::uint64_t n =
        w.DrainUpTo(horizon, [&w, &stats, horizon](double t,
                                                   std::uint32_t tag) {
          stats.checksum += t;
          const double next = t + kPalette[tag];
          if (next <= horizon) {
            w.Schedule(next, static_cast<std::uint32_t>((tag + 1) % kP));
          }
        });
    stats.events += n;
    if (n == 0) break;
  }
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  stats.cascaded = w.cascaded();
  return stats;
}

template <class Wheel>
LayoutStats BestOfLayout(int reps, std::size_t timers, double horizon,
                         std::uint64_t seed) {
  LayoutStats best;
  for (int r = 0; r < reps; ++r) {
    LayoutStats s = RunLayout<Wheel>(timers, horizon, seed);
    if (r == 0 || s.wall_ns < best.wall_ns) best = s;
  }
  return best;
}

void WriteJson(const std::vector<ScaleResult>& results,
               const std::vector<ShardedScaleResult>& sharded,
               const std::vector<WideAreaResult>& wide,
               const BreakdownResult& breakdown,
               const std::vector<MemoryScaleResult>& memory,
               const LayoutStats& layout_3x256, const LayoutStats& layout_4x64,
               const std::string& path) {
  const unsigned cpus = std::thread::hardware_concurrency();
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("p2pkernelbench/v1");
  w.Key("cpus").Uint(cpus);
  w.Key("memory_scales").BeginArray();
  for (const auto& m : memory) {
    w.BeginObject();
    w.Key("hosts").Uint(m.hosts);
    w.Key("ring_bytes").Uint(m.ring_bytes);
    w.Key("aggregate_bytes").Uint(m.aggregate_bytes);
    w.Key("bytes_per_host").Number(m.bytes_per_host());
    w.Key("presoa_bytes_per_host").Number(m.presoa_bytes_per_host());
    w.Key("reduction_vs_presoa").Number(m.reduction());
    w.Key("join_ms").Number(m.join_ms);
    w.EndObject();
  }
  w.EndArray();
  w.Key("scales").BeginArray();
  for (const auto& r : results) {
    const auto run = [&w](const char* name, const RunStats& s) {
      w.Key(name).BeginObject();
      w.Key("events").Uint(s.events);
      w.Key("ns_per_event").Number(s.ns_per_event());
      w.Key("events_per_sec").Number(s.events_per_sec());
      w.Key("peak_live").Uint(s.peak_live);
      w.Key("peak_footprint").Uint(s.peak_footprint);
      w.EndObject();
    };
    w.BeginObject();
    w.Key("hosts").Uint(r.hosts);
    w.Key("horizon_ms").Number(r.horizon);
    run("wheel", r.wheel);
    run("wheel_batched", r.batched);
    run("heap", r.heap);
    run("legacy", r.legacy);
    w.Key("speedup_legacy_over_wheel")
        .Number(r.legacy.ns_per_event() / r.wheel.ns_per_event());
    w.Key("speedup_legacy_over_heap")
        .Number(r.legacy.ns_per_event() / r.heap.ns_per_event());
    // The PopAllUpTo batching delta on the wheel (>1: batching wins).
    w.Key("speedup_step_over_batched")
        .Number(r.wheel.ns_per_event() / r.batched.ns_per_event());
    w.EndObject();
  }
  w.EndArray();

  // Sharded lockstep kernel: throughput against the critical-path
  // denominator (max per-shard busy + exchange, per window) — the wall
  // time on a machine with >= `shards` free cores. Bit-identical results
  // at any thread count make the projection sound; `cpus` above records
  // what this host could actually overlap.
  w.Key("sharded_scales").BeginArray();
  for (const auto& sc : sharded) {
    w.BeginObject();
    w.Key("hosts").Uint(sc.hosts);
    w.Key("horizon_ms").Number(sc.horizon);
    double base_critical = 0.0;
    w.Key("runs").BeginArray();
    for (const auto& [shards, s] : sc.runs) {
      if (shards == 1) base_critical = s.critical_ns;
      w.BeginObject();
      w.Key("shards").Uint(shards);
      // Per-row so downstream checks can flag critical-path projections
      // from hosts that could not actually overlap the shards.
      w.Key("cpus").Uint(cpus);
      w.Key("events").Uint(s.events);
      w.Key("windows").Uint(s.windows);
      w.Key("cross_shard_messages").Uint(s.cross);
      w.Key("critical_path_ns").Number(s.critical_ns);
      w.Key("critical_ns_per_event").Number(s.critical_ns_per_event());
      w.Key("events_per_sec_critical").Number(s.events_per_sec_critical());
      w.Key("wall_ns").Number(s.wall_ns);
      w.Key("speedup_critical_vs_serial")
          .Number(s.critical_ns == 0.0 ? 0.0
                                       : base_critical / s.critical_ns);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  // Wide-area lookahead extraction: fixed 56 ms windows vs the measured
  // per-pair matrix, same workload (see RunWideAreaOnce).
  w.Key("wide_area").BeginArray();
  for (const auto& wa : wide) {
    w.BeginObject();
    w.Key("hosts").Uint(wa.hosts);
    w.Key("horizon_ms").Number(wa.horizon);
    w.Key("regions").Uint(kWideRegions);
    w.Key("runs").BeginArray();
    for (const auto& run : wa.runs) {
      w.BeginObject();
      w.Key("shards").Uint(run.shards);
      w.Key("cpus").Uint(cpus);
      w.Key("events").Uint(run.fixed.events);
      w.Key("cross_shard_messages").Uint(run.fixed.cross);
      w.Key("windows_fixed").Uint(run.fixed.windows);
      w.Key("windows_extracted").Uint(run.extracted.windows);
      w.Key("window_reduction").Number(run.window_reduction());
      w.Key("critical_path_ns_fixed").Number(run.fixed.critical_ns);
      w.Key("critical_path_ns_extracted").Number(run.extracted.critical_ns);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  // Run-phase breakdown ladder: identical event stream, one cost layer per
  // rung; delta_ns prices the layer against the previous rung.
  w.Key("run_phase_breakdown").BeginObject();
  w.Key("hosts").Uint(breakdown.hosts);
  w.Key("horizon_ms").Number(breakdown.horizon);
  w.Key("events").Uint(breakdown.phases[0].events);
  w.Key("phases").BeginArray();
  for (std::size_t i = 0; i < breakdown.phases.size(); ++i) {
    const BreakdownStats& s = breakdown.phases[i];
    w.BeginObject();
    w.Key("phase").String(kBreakPhaseNames[i]);
    w.Key("ns_per_event").Number(s.ns_per_event());
    w.Key("delta_ns")
        .Number(i == 0 ? s.ns_per_event()
                       : s.ns_per_event() -
                             breakdown.phases[i - 1].ns_per_event());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  // Bucket-layout model: production 3x256 against 4x64.
  w.Key("wheel_layouts").BeginArray();
  const auto layout = [&w](const char* name, const LayoutStats& s) {
    w.BeginObject();
    w.Key("layout").String(name);
    w.Key("events").Uint(s.events);
    w.Key("cascaded").Uint(s.cascaded);
    w.Key("ns_per_event").Number(s.ns_per_event());
    w.EndObject();
  };
  layout("3x256", layout_3x256);
  layout("4x64", layout_4x64);
  w.EndArray();
  w.Key("speedup_4x64_over_3x256")
      .Number(layout_4x64.ns_per_event() / layout_3x256.ns_per_event());

  w.EndObject();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("[json] FAILED to open %s\n", path.c_str());
    return;
  }
  const std::string out = w.Take();
  std::fwrite(out.data(), 1, out.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace p2p::bench

int main(int argc, char** argv) {
  using namespace p2p::bench;

  std::string json_path;
  int reps = 3;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
    if (arg == "--quick") quick = true;
  }

  // Horizon shrinks with scale so each sweep pops a comparable number of
  // events (~4 per host-second of virtual time).
  struct Scale {
    std::size_t hosts;
    double horizon;
  };
  std::vector<Scale> scales = {{1200, 30000.0},
                               {5000, 15000.0},
                               {10000, 10000.0}};
  if (quick) scales = {{1200, 5000.0}, {10000, 2000.0}};

  std::printf("\n=== Event-loop kernel scale sweep ===\n");
  std::printf("(wheel = timing-wheel EventQueue, heap = retained heap "
              "backend,\n legacy = pre-wheel std::function/unordered_map "
              "queue; best of %d)\n\n", reps);

  // Untimed warm-up: the first timed configuration otherwise pays the
  // process's page faults and CPU frequency ramp and skews its ratio.
  {
    KernelDriver wheel(p2p::sim::SchedulerKind::kTimingWheel);
    RunOne(wheel, 1200, 3000.0, 7);
    LegacyDriver legacy;
    RunOne(legacy, 1200, 3000.0, 7);
  }

  std::vector<ScaleResult> results;
  p2p::util::Table table({"hosts", "events", "wheel ns/ev", "batched ns/ev",
                          "heap ns/ev", "legacy ns/ev", "legacy/wheel",
                          "peak live", "peak footprint"});
  for (const auto& sc : scales) {
    ScaleResult r;
    r.hosts = sc.hosts;
    r.horizon = sc.horizon;
    const std::uint64_t seed = 1000 + sc.hosts;
    r.wheel = BestOf(reps, sc.hosts, sc.horizon, seed, [] {
      return std::make_unique<KernelDriver>(
          p2p::sim::SchedulerKind::kTimingWheel);
    });
    r.batched = BestOfBatched(reps, sc.hosts, sc.horizon, seed);
    r.heap = BestOf(reps, sc.hosts, sc.horizon, seed, [] {
      return std::make_unique<KernelDriver>(
          p2p::sim::SchedulerKind::kBinaryHeap);
    });
    r.legacy = BestOf(reps, sc.hosts, sc.horizon, seed,
                      [] { return std::make_unique<LegacyDriver>(); });

    // The schedulers must agree on the logical stream: same pops, same
    // deliveries. A mismatch means the bench is comparing different
    // workloads and its ratios are meaningless.
    P2P_CHECK(r.wheel.events == r.heap.events);
    P2P_CHECK(r.wheel.events == r.legacy.events);
    P2P_CHECK(r.wheel.events == r.batched.events);
    P2P_CHECK(r.wheel.delivered == r.legacy.delivered);
    P2P_CHECK(r.wheel.delivered == r.batched.delivered);
    // Flat memory: the wheel's footprint tracks live entries (lazy garbage
    // only ever accumulates in the overflow heap).
    P2P_CHECK(r.wheel.peak_footprint <= 2 * r.wheel.peak_live + 1);

    table.AddRow({static_cast<long long>(r.hosts),
                  static_cast<long long>(r.wheel.events),
                  r.wheel.ns_per_event(), r.batched.ns_per_event(),
                  r.heap.ns_per_event(), r.legacy.ns_per_event(),
                  r.legacy.ns_per_event() / r.wheel.ns_per_event(),
                  static_cast<long long>(r.wheel.peak_live),
                  static_cast<long long>(r.wheel.peak_footprint)});
    results.push_back(r);
  }
  std::printf("%s\n", table.ToText().c_str());

  // --- sharded lockstep sweep --------------------------------------------
  struct ShardedScale {
    std::size_t hosts;
    double horizon;
  };
  std::vector<ShardedScale> sharded_scales = {{10000, 10000.0},
                                              {50000, 4000.0}};
  if (quick) sharded_scales = {{10000, 2000.0}};
  const std::vector<std::size_t> shard_counts = {1, 2, 4, 8};

  std::printf("=== Sharded lockstep kernel (lookahead 56 ms, critical-path "
              "throughput; %u cpu(s) on this host) ===\n",
              std::thread::hardware_concurrency());
  std::vector<ShardedScaleResult> sharded_results;
  p2p::util::Table stable({"hosts", "shards", "events", "windows",
                           "cross msgs", "crit ns/ev", "ev/s (crit)",
                           "speedup"});
  for (const auto& sc : sharded_scales) {
    ShardedScaleResult r;
    r.hosts = sc.hosts;
    r.horizon = sc.horizon;
    const std::uint64_t seed = 9000 + sc.hosts;
    // Rep-major interleaving: machine speed drifts over the minutes the
    // sweep takes, and the headline ratio divides the serial row by the
    // sharded rows. Running every shard count back to back within each
    // rep keeps the runs a ratio compares seconds — not minutes — apart;
    // the per-count best across reps then comes from the machine's quiet
    // moments for every count alike.
    std::vector<ShardedStats> best(shard_counts.size());
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t i = 0; i < shard_counts.size(); ++i) {
        ShardedStats s =
            RunShardedOnce(sc.hosts, shard_counts[i], sc.horizon, seed);
        if (rep == 0 || s.critical_ns < best[i].critical_ns) best[i] = s;
      }
    }
    for (std::size_t i = 0; i < shard_counts.size(); ++i)
      r.runs.emplace_back(shard_counts[i], best[i]);
    // One logical stream at every shard count, or the ratios are fiction.
    for (const auto& [shards, s] : r.runs) {
      P2P_CHECK_MSG(s.events == r.runs.front().second.events,
                    "fired-event mismatch at " << shards << " shards");
      P2P_CHECK_MSG(s.delivered == r.runs.front().second.delivered,
                    "delivery mismatch at " << shards << " shards");
    }
    const double base = r.runs.front().second.critical_ns;
    for (const auto& [shards, s] : r.runs) {
      stable.AddRow({static_cast<long long>(r.hosts),
                     static_cast<long long>(shards),
                     static_cast<long long>(s.events),
                     static_cast<long long>(s.windows),
                     static_cast<long long>(s.cross),
                     s.critical_ns_per_event(), s.events_per_sec_critical(),
                     base / s.critical_ns});
    }
    sharded_results.push_back(std::move(r));
  }
  std::printf("%s\n", stable.ToText().c_str());

  // --- wide-area lookahead extraction ------------------------------------
  struct WideScale {
    std::size_t hosts;
    double horizon;
  };
  std::vector<WideScale> wide_scales = {{10000, 10000.0}};
  if (quick) wide_scales = {{10000, 4000.0}};
  const std::vector<std::size_t> wide_shard_counts = {2, 4, 8};

  std::printf("=== Wide-area lookahead extraction (8 regions, inter-region "
              ">= 150 ms;\n fixed 56 ms windows vs measured per-pair "
              "matrix, same workload) ===\n");
  std::vector<WideAreaResult> wide_results;
  p2p::util::Table wtable({"hosts", "shards", "events", "win fixed",
                           "win extracted", "reduction"});
  for (const auto& sc : wide_scales) {
    WideAreaResult r;
    r.hosts = sc.hosts;
    r.horizon = sc.horizon;
    const std::uint64_t seed = 11000 + sc.hosts;
    for (const std::size_t shards : wide_shard_counts) {
      WideAreaResult::Run run;
      run.shards = shards;
      for (int rep = 0; rep < reps; ++rep) {
        WideAreaStats f =
            RunWideAreaOnce(sc.hosts, shards, sc.horizon, seed, false);
        WideAreaStats e =
            RunWideAreaOnce(sc.hosts, shards, sc.horizon, seed, true);
        if (rep == 0 || f.critical_ns < run.fixed.critical_ns) run.fixed = f;
        if (rep == 0 || e.critical_ns < run.extracted.critical_ns)
          run.extracted = e;
      }
      // Same workload either way: the matrix only reschedules the windows.
      P2P_CHECK_MSG(run.fixed.events == run.extracted.events,
                    "wide-area fired-event mismatch at " << shards
                                                         << " shards");
      P2P_CHECK_MSG(run.fixed.delivered == run.extracted.delivered,
                    "wide-area delivery mismatch at " << shards << " shards");
      P2P_CHECK_MSG(run.extracted.windows <= run.fixed.windows,
                    "extracted lookahead must not add windows");
      wtable.AddRow({static_cast<long long>(r.hosts),
                     static_cast<long long>(shards),
                     static_cast<long long>(run.fixed.events),
                     static_cast<long long>(run.fixed.windows),
                     static_cast<long long>(run.extracted.windows),
                     run.window_reduction()});
      r.runs.push_back(run);
    }
    // One logical stream at every shard count, like the lockstep sweep.
    for (const auto& run : r.runs) {
      P2P_CHECK_MSG(run.fixed.events == r.runs.front().fixed.events,
                    "wide-area stream mismatch across shard counts");
    }
    wide_results.push_back(std::move(r));
  }
  std::printf("%s\n", wtable.ToText().c_str());

  // --- run-phase breakdown -----------------------------------------------
  BreakdownResult breakdown;
  breakdown.hosts = quick ? 5000 : 10000;
  breakdown.horizon = quick ? 4000.0 : 10000.0;
  {
    const std::uint64_t seed = 13000 + breakdown.hosts;
    for (int p = 0; p < 4; ++p) {
      BreakdownStats best;
      for (int rep = 0; rep < reps; ++rep) {
        BreakdownStats s =
            RunBreakdownOnce(static_cast<BreakPhase>(p), breakdown.hosts,
                             breakdown.horizon, seed);
        if (rep == 0 || s.wall_ns < best.wall_ns) best = s;
      }
      breakdown.phases[static_cast<std::size_t>(p)] = best;
    }
    // Identical fired-event stream on every rung, or the deltas are noise.
    for (int p = 1; p < 4; ++p) {
      P2P_CHECK_MSG(breakdown.phases[p].events == breakdown.phases[0].events,
                    "breakdown rung " << kBreakPhaseNames[p]
                                      << " changed the event stream");
    }
    for (int p = 2; p < 4; ++p) {
      P2P_CHECK(breakdown.phases[p].delivered ==
                breakdown.phases[1].delivered);
    }
    std::printf("=== Run-phase breakdown (%zu hosts, identical %llu-event "
                "stream per rung) ===\n",
                breakdown.hosts,
                static_cast<unsigned long long>(
                    breakdown.phases[0].events));
    for (int p = 0; p < 4; ++p) {
      const double ns = breakdown.phases[p].ns_per_event();
      const double prev =
          p == 0 ? 0.0 : breakdown.phases[p - 1].ns_per_event();
      std::printf("  %-18s %7.1f ns/event  (+%5.1f)\n", kBreakPhaseNames[p],
                  ns, ns - prev);
    }
    std::printf("\n");
  }

  // --- per-host protocol memory ------------------------------------------
  std::vector<std::size_t> mem_hosts = {1200, 10000};
  if (quick) mem_hosts = {1200};
  std::printf("=== Per-host protocol memory (ring routing state + SOMO "
              "root aggregate,\n SoA vs the seed's dense/AoS layouts) "
              "===\n");
  std::vector<MemoryScaleResult> memory_results;
  p2p::util::Table mtable({"hosts", "B/host (SoA)", "B/host (pre-SoA)",
                           "reduction", "join ms"});
  for (const std::size_t h : mem_hosts) {
    MemoryScaleResult m = RunMemoryScale(h);
    mtable.AddRow({static_cast<long long>(m.hosts), m.bytes_per_host(),
                   m.presoa_bytes_per_host(), m.reduction(), m.join_ms});
    memory_results.push_back(m);
  }
  std::printf("%s\n", mtable.ToText().c_str());

  // --- wheel bucket-layout model -----------------------------------------
  const std::size_t layout_timers = quick ? 4000 : 20000;
  const double layout_horizon = quick ? 20000.0 : 60000.0;
  const LayoutStats l3x256 = BestOfLayout<LayoutWheel<3, 8>>(
      reps, layout_timers, layout_horizon, 77);
  const LayoutStats l4x64 = BestOfLayout<LayoutWheel<4, 6>>(
      reps, layout_timers, layout_horizon, 77);
  P2P_CHECK(l3x256.events == l4x64.events);
  P2P_CHECK(l3x256.checksum == l4x64.checksum);
  std::printf("=== Wheel bucket layouts (identical %llu-event timer storm) "
              "===\n",
              static_cast<unsigned long long>(l3x256.events));
  std::printf("  3x256 (production): %7.1f ns/event, %llu cascades\n",
              l3x256.ns_per_event(),
              static_cast<unsigned long long>(l3x256.cascaded));
  std::printf("  4x64:               %7.1f ns/event, %llu cascades\n\n",
              l4x64.ns_per_event(),
              static_cast<unsigned long long>(l4x64.cascaded));

  if (!json_path.empty())
    WriteJson(results, sharded_results, wide_results, breakdown,
              memory_results, l3x256, l4x64, json_path);
  return 0;
}
