// Kernel scale sweep: event-loop throughput at 1.2k / 5k / 10k hosts.
//
// Drives the same synthetic protocol mix (heartbeat periodics, SOMO report
// periodics, transport delivery one-shots, failure-timeout rearm churn)
// through three schedulers:
//
//   wheel   sim::EventQueue, hierarchical timing wheel (the default)
//   heap    sim::EventQueue, retained binary-heap backend
//   legacy  a bench-local copy of the pre-wheel queue: std::function
//           callbacks in an unordered_map keyed by id, a lazily-compacted
//           binary heap, and periodic timers built from the old
//           shared_ptr<bool> + self-rescheduling-wrapper pattern
//
// The wheel additionally runs in "batched" mode — one PopAllUpTo drain per
// window instead of a peek+pop virtual round trip per event, which is what
// Simulation::RunUntil ships — so the JSON records the batching delta on
// the identical event stream.
//
// All three drivers consume the identical logical event stream — the
// (time, seq) allocation discipline of the new queue was designed to match
// the legacy wrapper exactly — so per-scale event counts agree and the
// ns/event ratio legacy : wheel is a true before/after speedup.
//
// Usage: bench_kernel [--json PATH] [--reps N] [--quick]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "sim/event_queue.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/rng.h"

namespace p2p::bench {
namespace {

// ---------------------------------------------------------------------------
// Legacy queue: faithful copy of the pre-wheel src/sim/event_queue.{h,cc}.
// Kept bench-local so the repo's production tree carries exactly one
// reference backend (EventQueue's retained heap); this copy exists to price
// the allocation behaviour the rewrite removed.
// ---------------------------------------------------------------------------
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  std::uint64_t Schedule(double t, Callback cb) {
    const std::uint64_t id = next_id_++;
    heap_.push_back(Entry{t, next_seq_++, id});
    std::push_heap(heap_.begin(), heap_.end());
    callbacks_.emplace(id, std::move(cb));
    ++live_count_;
    return id;
  }

  bool Cancel(std::uint64_t id) {
    const auto it = callbacks_.find(id);
    if (it == callbacks_.end()) return false;
    callbacks_.erase(it);
    --live_count_;
    CompactIfMostlyGarbage();
    return true;
  }

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }
  std::size_t heap_footprint() const { return heap_.size(); }

  double PeekTime() {
    DropCancelledHead();
    return heap_.front().time;
  }

  struct Fired {
    double time;
    std::uint64_t id;
    Callback cb;
  };
  Fired Pop() {
    DropCancelledHead();
    const Entry e = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    auto it = callbacks_.find(e.id);
    Fired fired{e.time, e.id, std::move(it->second)};
    callbacks_.erase(it);
    --live_count_;
    return fired;
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    std::uint64_t id;
    bool operator<(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void DropCancelledHead() {
    while (!heap_.empty() &&
           callbacks_.find(heap_.front().id) == callbacks_.end()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
    }
  }

  void CompactIfMostlyGarbage() {
    if (heap_.size() - live_count_ <= heap_.size() / 2) return;
    std::erase_if(heap_, [this](const Entry& e) {
      return callbacks_.find(e.id) == callbacks_.end();
    });
    std::make_heap(heap_.begin(), heap_.end());
  }

  std::vector<Entry> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::size_t live_count_ = 0;
};

// ---------------------------------------------------------------------------
// Drivers: a uniform five-call surface over each scheduler. The workload
// below is templated on this so all three runs execute the same code.
// ---------------------------------------------------------------------------

// sim::EventQueue under either backend, using the first-class periodic API.
class KernelDriver {
 public:
  using Id = sim::EventId;
  static constexpr Id kNone = sim::kInvalidEventId;

  explicit KernelDriver(sim::SchedulerKind kind) : q_(kind) {}

  double now() const { return now_; }

  template <class F>
  void Every(double period, double first_delay, F fn) {
    q_.SchedulePeriodic(now_ + first_delay, period, std::move(fn));
  }

  template <class F>
  Id After(double dt, F fn) {
    return q_.Schedule(now_ + dt, std::move(fn));
  }

  // The heartbeat suppress pattern: push an armed timeout back without
  // cancel/reschedule churn. MakeFn is only invoked when the timeout is
  // not currently armed.
  template <class MakeFn>
  void PushBack(Id& id, double t, MakeFn make) {
    if (id != kNone && q_.Rearm(id, t)) return;
    id = q_.Schedule(t, make());
  }

  bool StepUpTo(double horizon) {
    if (q_.empty() || q_.PeekTime() > horizon) return false;
    auto fired = q_.Pop();
    now_ = fired.time;
    if (fired.is_periodic()) {
      (*fired.periodic)();
      q_.FinishPeriodic(fired.id);
    } else {
      fired.cb();
    }
    return true;
  }

  // Batched drain (Simulation::RunUntil's production path): one virtual
  // PopAllUpTo call for the whole window, periodics re-armed internally.
  // `on_event` runs after each callback so the caller can count/sample.
  template <class OnEvent>
  std::size_t DrainUpTo(double horizon, OnEvent on_event) {
    std::size_t n = 0;
    q_.PopAllUpTo(horizon, [&](sim::EventQueue::Fired& fired) {
      now_ = fired.time;
      ++n;
      if (fired.is_periodic()) {
        (*fired.periodic)();
      } else {
        fired.cb();
      }
      on_event();
    });
    return n;
  }

  std::size_t live() const { return q_.size(); }
  std::size_t footprint() const { return q_.heap_footprint(); }

 private:
  sim::EventQueue q_;
  double now_ = 0.0;
};

// The pre-wheel stack: periodic timers are the old recursive wrapper, and
// PushBack is the Cancel + re-Schedule churn the Rearm API replaced.
class LegacyDriver {
 public:
  using Id = std::uint64_t;
  static constexpr Id kNone = 0;

  double now() const { return now_; }

  template <class F>
  void Every(double period, double first_delay, F fn) {
    Arm(period, now_ + first_delay, std::make_shared<bool>(true),
        std::make_shared<std::function<void()>>(std::move(fn)));
  }

  template <class F>
  Id After(double dt, F fn) {
    return q_.Schedule(now_ + dt, std::move(fn));
  }

  template <class MakeFn>
  void PushBack(Id& id, double t, MakeFn make) {
    if (id != kNone) q_.Cancel(id);
    id = q_.Schedule(t, make());
  }

  bool StepUpTo(double horizon) {
    if (q_.empty() || q_.PeekTime() > horizon) return false;
    auto fired = q_.Pop();
    now_ = fired.time;
    fired.cb();
    return true;
  }

  std::size_t live() const { return q_.size(); }
  std::size_t footprint() const { return q_.heap_footprint(); }

 private:
  void Arm(double period, double next, std::shared_ptr<bool> alive,
           std::shared_ptr<std::function<void()>> cb) {
    q_.Schedule(next, [this, period, next, alive, cb] {
      if (!*alive) return;
      (*cb)();
      if (*alive) Arm(period, next + period, alive, cb);
    });
  }

  LegacyEventQueue q_;
  double now_ = 0.0;
};

// ---------------------------------------------------------------------------
// Workload: per host, a 1 Hz heartbeat that fans out two transport
// deliveries and pushes a failure timeout back (the suppress pattern), and
// a 0.5 Hz SOMO report that schedules one aggregation hop. Latencies come
// from the host-indexed part of the seed so every driver sees the same
// virtual-time stream without sharing an Rng consumption order.
// ---------------------------------------------------------------------------
struct RunStats {
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;  // workload checksum: must match across drivers
  double wall_ns = 0.0;
  std::size_t peak_live = 0;
  std::size_t peak_footprint = 0;

  double ns_per_event() const {
    return events == 0 ? 0.0 : wall_ns / static_cast<double>(events);
  }
  double events_per_sec() const {
    return wall_ns == 0.0 ? 0.0
                          : static_cast<double>(events) * 1e9 / wall_ns;
  }
};

template <class Driver>
struct Workload {
  explicit Workload(Driver& d, std::size_t hosts, std::uint64_t seed)
      : driver(d), rng(seed) {
    timeout.assign(hosts, Driver::kNone);
    // Per-host fixed latency palette, drawn up front so scheduling-time
    // RNG draws cannot depend on the driver's internal callback shapes.
    lat.reserve(hosts);
    for (std::size_t h = 0; h < hosts; ++h)
      lat.push_back(rng.Uniform(5.0, 150.0));
    for (std::size_t h = 0; h < hosts; ++h) {
      const double phase = rng.Uniform(0.0, 1000.0);
      driver.Every(1000.0, phase, [this, h] { Heartbeat(h); });
      driver.Every(2000.0, phase + rng.Uniform(0.0, 1000.0),
                   [this, h] { SomoReport(h); });
      // Bandwidth-probe tick: a fast pure timer, like the packet-pair
      // probe pacing in bwest. No fan-out — it prices the periodic fire
      // path itself.
      driver.Every(500.0, rng.Uniform(0.0, 500.0), [this] { ++probes; });
    }
  }

  // What a transport delivery closure actually carries in the protocol
  // stack: addressing, size, and latency bookkeeping. At 32 bytes the
  // whole closure (this + h + Msg) stays inside InlineFn's 48-byte buffer;
  // std::function's 16-byte SBO spills it to the heap — the production
  // difference the bench must price.
  struct Msg {
    std::uint32_t src, dst, bytes;
    float latency;
  };

  void Heartbeat(std::size_t h) {
    for (std::uint32_t k = 0; k < 2; ++k) {
      const Msg m{static_cast<std::uint32_t>(h),
                  static_cast<std::uint32_t>((h + k + 1) % timeout.size()),
                  64, static_cast<float>(lat[h])};
      driver.After(lat[h] + 7.0 * k, [this, h, m] { Delivered(h, m); });
    }
  }

  void Delivered(std::size_t h, Msg m) {
    ++delivered;
    bytes_delivered += m.bytes;
    // Failure detector reset on every received heartbeat — the dominant
    // churn pattern in the real protocol stack. Fires only if three
    // heartbeat intervals go silent.
    driver.PushBack(timeout[h], driver.now() + 3000.0, [this, h, m] {
      return [this, h, m] { Expired(h, m.src); };
    });
  }

  void SomoReport(std::size_t h) {
    const Msg m{static_cast<std::uint32_t>(h),
                static_cast<std::uint32_t>(h / 2), 256,
                static_cast<float>(lat[h])};
    driver.After(0.5 * lat[h] + 10.0, [this, m] {
      ++delivered;
      bytes_delivered += m.bytes;
    });
  }

  void Expired(std::size_t h, std::uint32_t /*suspect*/) {
    timeout[h] = Driver::kNone;
    ++expired;
  }

  Driver& driver;
  util::Rng rng;
  std::vector<double> lat;
  std::vector<typename Driver::Id> timeout;
  std::uint64_t delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t probes = 0;
  std::uint64_t expired = 0;
};

template <class Driver>
RunStats RunOne(Driver& driver, std::size_t hosts, double horizon,
                std::uint64_t seed) {
  Workload<Driver> w(driver, hosts, seed);
  RunStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  while (driver.StepUpTo(horizon)) {
    ++stats.events;
    if ((stats.events & 1023u) == 0) {
      stats.peak_live = std::max(stats.peak_live, driver.live());
      stats.peak_footprint = std::max(stats.peak_footprint,
                                      driver.footprint());
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  stats.peak_live = std::max(stats.peak_live, driver.live());
  stats.peak_footprint = std::max(stats.peak_footprint, driver.footprint());
  stats.delivered = w.delivered;
  P2P_CHECK_MSG(w.expired == 0, "suppress pattern must hold timeouts back");
  return stats;
}

// Same workload, but drained through PopAllUpTo in one batched call.
RunStats RunOneBatched(KernelDriver& driver, std::size_t hosts,
                       double horizon, std::uint64_t seed) {
  Workload<KernelDriver> w(driver, hosts, seed);
  RunStats stats;
  std::uint64_t n = 0;
  const auto t0 = std::chrono::steady_clock::now();
  stats.events = driver.DrainUpTo(horizon, [&] {
    if ((++n & 1023u) == 0) {
      stats.peak_live = std::max(stats.peak_live, driver.live());
      stats.peak_footprint = std::max(stats.peak_footprint,
                                      driver.footprint());
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  stats.peak_live = std::max(stats.peak_live, driver.live());
  stats.peak_footprint = std::max(stats.peak_footprint, driver.footprint());
  stats.delivered = w.delivered;
  P2P_CHECK_MSG(w.expired == 0, "suppress pattern must hold timeouts back");
  return stats;
}

template <class MakeDriver>
RunStats BestOf(int reps, std::size_t hosts, double horizon,
                std::uint64_t seed, MakeDriver make) {
  RunStats best;
  for (int r = 0; r < reps; ++r) {
    auto driver = make();
    RunStats s = RunOne(*driver, hosts, horizon, seed);
    if (r == 0 || s.wall_ns < best.wall_ns) best = s;
  }
  return best;
}

RunStats BestOfBatched(int reps, std::size_t hosts, double horizon,
                       std::uint64_t seed) {
  RunStats best;
  for (int r = 0; r < reps; ++r) {
    KernelDriver driver(p2p::sim::SchedulerKind::kTimingWheel);
    RunStats s = RunOneBatched(driver, hosts, horizon, seed);
    if (r == 0 || s.wall_ns < best.wall_ns) best = s;
  }
  return best;
}

struct ScaleResult {
  std::size_t hosts = 0;
  double horizon = 0.0;
  RunStats wheel, batched, heap, legacy;
};

void WriteJson(const std::vector<ScaleResult>& results,
               const std::string& path) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("p2pkernelbench/v1");
  w.Key("scales").BeginArray();
  for (const auto& r : results) {
    const auto run = [&w](const char* name, const RunStats& s) {
      w.Key(name).BeginObject();
      w.Key("events").Uint(s.events);
      w.Key("ns_per_event").Number(s.ns_per_event());
      w.Key("events_per_sec").Number(s.events_per_sec());
      w.Key("peak_live").Uint(s.peak_live);
      w.Key("peak_footprint").Uint(s.peak_footprint);
      w.EndObject();
    };
    w.BeginObject();
    w.Key("hosts").Uint(r.hosts);
    w.Key("horizon_ms").Number(r.horizon);
    run("wheel", r.wheel);
    run("wheel_batched", r.batched);
    run("heap", r.heap);
    run("legacy", r.legacy);
    w.Key("speedup_legacy_over_wheel")
        .Number(r.legacy.ns_per_event() / r.wheel.ns_per_event());
    w.Key("speedup_legacy_over_heap")
        .Number(r.legacy.ns_per_event() / r.heap.ns_per_event());
    // The PopAllUpTo batching delta on the wheel (>1: batching wins).
    w.Key("speedup_step_over_batched")
        .Number(r.wheel.ns_per_event() / r.batched.ns_per_event());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("[json] FAILED to open %s\n", path.c_str());
    return;
  }
  const std::string out = w.Take();
  std::fwrite(out.data(), 1, out.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("[json] wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace p2p::bench

int main(int argc, char** argv) {
  using namespace p2p::bench;

  std::string json_path;
  int reps = 3;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
    if (arg == "--quick") quick = true;
  }

  // Horizon shrinks with scale so each sweep pops a comparable number of
  // events (~4 per host-second of virtual time).
  struct Scale {
    std::size_t hosts;
    double horizon;
  };
  std::vector<Scale> scales = {{1200, 30000.0},
                               {5000, 15000.0},
                               {10000, 10000.0}};
  if (quick) scales = {{1200, 5000.0}, {10000, 2000.0}};

  std::printf("\n=== Event-loop kernel scale sweep ===\n");
  std::printf("(wheel = timing-wheel EventQueue, heap = retained heap "
              "backend,\n legacy = pre-wheel std::function/unordered_map "
              "queue; best of %d)\n\n", reps);

  // Untimed warm-up: the first timed configuration otherwise pays the
  // process's page faults and CPU frequency ramp and skews its ratio.
  {
    KernelDriver wheel(p2p::sim::SchedulerKind::kTimingWheel);
    RunOne(wheel, 1200, 3000.0, 7);
    LegacyDriver legacy;
    RunOne(legacy, 1200, 3000.0, 7);
  }

  std::vector<ScaleResult> results;
  p2p::util::Table table({"hosts", "events", "wheel ns/ev", "batched ns/ev",
                          "heap ns/ev", "legacy ns/ev", "legacy/wheel",
                          "peak live", "peak footprint"});
  for (const auto& sc : scales) {
    ScaleResult r;
    r.hosts = sc.hosts;
    r.horizon = sc.horizon;
    const std::uint64_t seed = 1000 + sc.hosts;
    r.wheel = BestOf(reps, sc.hosts, sc.horizon, seed, [] {
      return std::make_unique<KernelDriver>(
          p2p::sim::SchedulerKind::kTimingWheel);
    });
    r.batched = BestOfBatched(reps, sc.hosts, sc.horizon, seed);
    r.heap = BestOf(reps, sc.hosts, sc.horizon, seed, [] {
      return std::make_unique<KernelDriver>(
          p2p::sim::SchedulerKind::kBinaryHeap);
    });
    r.legacy = BestOf(reps, sc.hosts, sc.horizon, seed,
                      [] { return std::make_unique<LegacyDriver>(); });

    // The schedulers must agree on the logical stream: same pops, same
    // deliveries. A mismatch means the bench is comparing different
    // workloads and its ratios are meaningless.
    P2P_CHECK(r.wheel.events == r.heap.events);
    P2P_CHECK(r.wheel.events == r.legacy.events);
    P2P_CHECK(r.wheel.events == r.batched.events);
    P2P_CHECK(r.wheel.delivered == r.legacy.delivered);
    P2P_CHECK(r.wheel.delivered == r.batched.delivered);
    // Flat memory: the wheel's footprint tracks live entries (lazy garbage
    // only ever accumulates in the overflow heap).
    P2P_CHECK(r.wheel.peak_footprint <= 2 * r.wheel.peak_live + 1);

    table.AddRow({static_cast<long long>(r.hosts),
                  static_cast<long long>(r.wheel.events),
                  r.wheel.ns_per_event(), r.batched.ns_per_event(),
                  r.heap.ns_per_event(), r.legacy.ns_per_event(),
                  r.legacy.ns_per_event() / r.wheel.ns_per_event(),
                  static_cast<long long>(r.wheel.peak_live),
                  static_cast<long long>(r.wheel.peak_footprint)});
    results.push_back(r);
  }
  std::printf("%s\n", table.ToText().c_str());

  if (!json_path.empty()) WriteJson(results, json_path);
  return 0;
}
