// §3.2 LiquidEye self-healing experiment: run heartbeats + SOMO over the
// simulated network, crash machines ("unplug cables"), and measure how
// long until the root's global view covers every surviving node again.
//
// Expected shape: the view regenerates after a short jitter — roughly the
// failure-detection timeout plus one or two reporting cycles — at every
// tested failure burst size.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "dht/heartbeat.h"
#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "sim/simulation.h"
#include "somo/somo.h"

namespace p2p {
namespace {

struct RepairResult {
  double detect_ms = -1.0;   // first failure detection after the burst
  double recover_ms = -1.0;  // root view complete again
};

RepairResult RunBurst(std::size_t nodes, std::size_t burst,
                      std::uint64_t seed, bool synchronized_gather) {
  net::TransitStubParams params;
  params.end_hosts = nodes;
  util::Rng topo_rng(seed);
  const auto topo = net::GenerateTransitStub(params, topo_rng);
  const net::LatencyOracle oracle(topo);

  sim::Simulation sim(seed);
  dht::Ring ring(16, &oracle);
  for (std::size_t h = 0; h < nodes; ++h) ring.JoinHashed(h);
  ring.StabilizeAll();

  dht::HeartbeatConfig hcfg;
  hcfg.period_ms = 1000.0;
  hcfg.timeout_ms = 3500.0;
  dht::HeartbeatProtocol hb(sim, ring, hcfg);

  somo::SomoConfig scfg;
  scfg.fanout = 8;
  scfg.report_interval_ms = 5000.0;  // the paper's 5 s cycle
  scfg.synchronized_gather = synchronized_gather;
  somo::SomoProtocol somo(sim, ring, scfg, [&](dht::NodeIndex n) {
    somo::NodeReport r;
    r.node = n;
    r.host = ring.node(n).host();
    r.generated_at = sim.now();
    return r;
  });
  double first_detection = -1.0;
  hb.AddFailureObserver([&](dht::NodeIndex, dht::NodeIndex, sim::Time t) {
    if (first_detection < 0) first_detection = t;
    somo.Rebuild();
  });

  hb.Start();
  somo.Start();
  sim.RunUntil(60000.0);
  if (!somo.RootViewComplete()) return {};

  // The burst: crash `burst` random nodes at once.
  const double t0 = sim.now();
  util::Rng pick(seed ^ 0xbeef);
  for (std::size_t i = 0; i < burst; ++i) {
    const auto alive = ring.SortedAlive();
    ring.Fail(alive[pick.NextBounded(alive.size())]);
  }
  // Measure until the root view is regenerated: every survivor present
  // AND the dead machines purged (a merely-stale view still lists them).
  double recovered = -1.0;
  while (sim.now() < t0 + 120000.0) {
    sim.RunUntil(sim.now() + 250.0);
    if (somo.RootViewComplete() &&
        somo.RootReport().size() == ring.alive_count()) {
      recovered = sim.now();
      break;
    }
  }
  RepairResult result;
  if (first_detection >= t0) result.detect_ms = first_detection - t0;
  if (recovered >= 0) result.recover_ms = recovered - t0;
  return result;
}

}  // namespace
}  // namespace p2p

int main(int argc, char** argv) {
  using namespace p2p;
  bench::CsvSink csv(argc, argv);
  bench::PrintHeader("SOMO self-healing (LiquidEye, §3.2)",
                     "§3.2: view regenerates after a short jitter");

  util::Table table({"nodes", "burst", "detect_ms", "recover_unsync_ms",
                     "recover_sync_ms"});
  for (const std::size_t burst : {1u, 4u, 8u, 16u}) {
    util::Accumulator detect, recover_unsync, recover_sync;
    for (std::uint64_t r = 0; r < 3; ++r) {
      const auto u = RunBurst(128, burst, 300 + r, false);
      if (u.detect_ms >= 0) detect.Add(u.detect_ms);
      if (u.recover_ms >= 0) recover_unsync.Add(u.recover_ms);
      const auto sy = RunBurst(128, burst, 300 + r, true);
      if (sy.recover_ms >= 0) recover_sync.Add(sy.recover_ms);
    }
    table.AddRow({128ll, static_cast<long long>(burst), detect.mean(),
                  recover_unsync.mean(), recover_sync.mean()});
  }
  std::printf("%s\n", table.ToText(0).c_str());
  std::printf(
      "Check: detection within the 3.5 s heartbeat timeout; synchronised "
      "gather recovers within ~1-2 reporting cycles after detection; "
      "unsynchronised gather needs ~depth cycles (information climbs one "
      "level per cycle).\n");
  csv.Write(table, "somo_repair");
  return 0;
}
