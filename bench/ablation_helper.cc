// Ablation (DESIGN.md §6): the critical-node helper search.
//  * Selection rule: nearest-to-parent (the paper's "first variation") vs
//    the minimax heuristic of conditions 1–3.
//  * Radius R sweep: the paper reports R in 50–150 works well for this
//    topology — small R starves the candidate set, large R admits "junk"
//    nodes with long links.
#include <cstdio>
#include <mutex>
#include <vector>

#include "alm/bounds.h"
#include "alm/critical.h"
#include "bench/bench_common.h"

namespace p2p {
namespace {

constexpr std::size_t kRuns = 10;
constexpr std::size_t kGroup = 20;

struct Workload {
  alm::PlanInput in;
  double base_height;
};

Workload MakeWorkload(pool::ResourcePool& rp, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto idx = rng.SampleIndices(rp.size(), kGroup);
  Workload w;
  w.in.degree_bounds = rp.degree_bounds();
  w.in.root = idx[0];
  w.in.members.assign(idx.begin() + 1, idx.end());
  std::vector<char> is_member(rp.size(), 0);
  for (const auto v : idx) is_member[v] = 1;
  for (std::size_t v = 0; v < rp.size(); ++v) {
    if (!is_member[v] && rp.degree_bound(v) >= 4)
      w.in.helper_candidates.push_back(v);
  }
  w.in.true_latency = rp.TrueLatencyFn();
  w.base_height = PlanSession(w.in, alm::Strategy::kAmcast).height_true;
  return w;
}

}  // namespace
}  // namespace p2p

int main(int argc, char** argv) {
  using namespace p2p;
  bench::CsvSink csv(argc, argv);
  bench::PrintHeader("Ablation — helper selection rule and radius R",
                     "§5.2: selection heuristic; R in 50~150 works well");

  // One pool shared read-only across runs (plans don't mutate it).
  util::ThreadPool threads;
  pool::ResourcePool rp(bench::PaperConfig(31), &threads);
  std::vector<Workload> workloads;
  for (std::size_t r = 0; r < kRuns; ++r)
    workloads.push_back(MakeWorkload(rp, 700 + r));

  // --- selection rule, R fixed at 100 -----------------------------------
  // Reported both before and after adjustment: the adjustment phase can
  // mask selection-rule differences by repairing poor splices.
  util::Table sel(
      {"selection", "impr_no_adjust", "impr_with_adjust", "helpers"});
  for (const auto mode : {alm::HelperSelection::kNearestToParent,
                          alm::HelperSelection::kMinimaxHeuristic}) {
    util::Accumulator raw, adjusted, helpers;
    for (const auto& w : workloads) {
      alm::PlanInput in = w.in;
      in.amcast.selection = mode;
      in.amcast.helper_radius = 100.0;
      const auto r0 = PlanSession(in, alm::Strategy::kCritical);
      raw.Add(alm::Improvement(w.base_height, r0.height_true));
      const auto r1 = PlanSession(in, alm::Strategy::kCriticalAdjust);
      adjusted.Add(alm::Improvement(w.base_height, r1.height_true));
      helpers.Add(static_cast<double>(r1.helpers_used));
    }
    sel.AddRow({mode == alm::HelperSelection::kNearestToParent
                    ? std::string("nearest-to-parent")
                    : std::string("minimax (cond 1-3)"),
                raw.mean(), adjusted.mean(), helpers.mean()});
  }
  std::printf("%s\n", sel.ToText(3).c_str());

  // --- radius sweep, minimax rule ----------------------------------------
  util::Table rad({"R_ms", "improvement", "helpers"});
  for (const double R : {25.0, 50.0, 100.0, 150.0, 300.0, 600.0}) {
    util::Accumulator impr, helpers;
    for (const auto& w : workloads) {
      alm::PlanInput in = w.in;
      in.amcast.selection = alm::HelperSelection::kMinimaxHeuristic;
      in.amcast.helper_radius = R;
      const auto r = PlanSession(in, alm::Strategy::kCriticalAdjust);
      impr.Add(alm::Improvement(w.base_height, r.height_true));
      helpers.Add(static_cast<double>(r.helpers_used));
    }
    rad.AddRow({R, impr.mean(), helpers.mean()});
  }
  std::printf("%s\n", rad.ToText(3).c_str());
  std::printf(
      "Check: minimax >= nearest-to-parent; improvement peaks for R in "
      "50-150 and degrades at the extremes.\n");
  csv.Write(sel, "ablation_helper_selection");
  csv.Write(rad, "ablation_helper_radius");
  return 0;
}
