// Shared setup for the experiment harnesses: paper-sized pools, run
// parallelisation, and consistent output formatting.
//
// Every harness prints the series of one paper figure (see DESIGN.md §2)
// as an aligned text table; pass --csv <dir> to also drop CSV files for
// external plotting.
#pragma once

#include <cstdio>
#include <string>

#include "pool/resource_pool.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace p2p::bench {

// Paper configuration: 600-router transit-stub, 1200 end systems,
// leafset 32, paper degree distribution.
inline pool::PoolConfig PaperConfig(std::uint64_t seed) {
  pool::PoolConfig cfg;
  cfg.seed = seed;
  return cfg;
}

struct CsvSink {
  std::string dir;  // empty = disabled

  explicit CsvSink(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--csv") dir = argv[i + 1];
    }
  }

  void Write(const util::Table& table, const std::string& name) const {
    if (dir.empty()) return;
    const std::string path = dir + "/" + name + ".csv";
    if (table.WriteCsv(path)) {
      std::printf("[csv] wrote %s\n", path.c_str());
    } else {
      std::printf("[csv] FAILED to write %s\n", path.c_str());
    }
  }
};

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n(reproduces %s)\n\n", title, paper_ref);
}

}  // namespace p2p::bench
