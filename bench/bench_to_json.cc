// Bench-regression harness for the ALM planning fast path.
//
// Runs the heap+matrix planner against the retained linear-scan reference
// (BuildAmcastTreeReference) on the same instances, so one JSON file
// captures the speedup ratio at every size. Unlike bench_micro this binary
// defaults to machine-readable output: with no flags it writes
// BENCH_alm.json (google-benchmark JSON schema) to the working directory —
// tools/run_benches.sh runs it from the repo root. Pass your own
// --benchmark_out=... to override.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <cmath>

#include "alm/adjust.h"
#include "alm/amcast.h"
#include "dht/ring.h"
#include "obs/alert.h"
#include "somo/somo.h"
#include "alm/critical.h"
#include "alm/latency_matrix.h"
#include "alm/mesh.h"
#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "obs/metrics.h"
#include "pool/resource_pool.h"
#include "sim/simulation.h"
#include "sim/transport.h"
#include "util/rng.h"

namespace p2p {
namespace {

struct PlanFixture {
  net::TransitStubTopology topo;
  net::LatencyOracle oracle;
  std::vector<int> bounds;

  explicit PlanFixture(std::uint64_t seed)
      : topo([&] {
          util::Rng rng(seed);
          return net::GenerateTransitStub(net::TransitStubParams{}, rng);
        }()),
        oracle(topo) {
    util::Rng rng(seed + 1);
    for (std::size_t i = 0; i < topo.host_count(); ++i)
      bounds.push_back(pool::SamplePaperDegreeBound(rng));
  }
};

PlanFixture& SharedFixture() {
  static PlanFixture fx(9);
  return fx;
}

// The new planner and the reference run on identical instances (same
// fixture, same sampling seed) so the per-size ratio is the speedup.
alm::AmcastInput MakeInput(const PlanFixture& fx, std::size_t group,
                           bool with_helpers) {
  util::Rng rng(11);
  const auto idx = rng.SampleIndices(fx.topo.host_count(), group);
  alm::AmcastInput in;
  in.degree_bounds = fx.bounds;
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  if (with_helpers) {
    std::vector<char> is_member(fx.topo.host_count(), 0);
    for (const auto v : idx) is_member[v] = 1;
    for (std::size_t v = 0; v < fx.topo.host_count(); ++v)
      if (!is_member[v] && fx.bounds[v] >= 4)
        in.helper_candidates.push_back(v);
  }
  return in;
}

alm::LatencyFn OracleFn(const PlanFixture& fx) {
  return [&fx](std::size_t a, std::size_t b) {
    return fx.oracle.Latency(a, b);
  };
}

// ------------------------------------------------- members-only planning --

void BM_AmcastPlan(benchmark::State& state) {
  auto& fx = SharedFixture();
  const auto in =
      MakeInput(fx, static_cast<std::size_t>(state.range(0)), false);
  const auto latency = OracleFn(fx);
  for (auto _ : state) {
    const auto r = BuildAmcastTree(in, latency);
    benchmark::DoNotOptimize(r.height);
  }
}
BENCHMARK(BM_AmcastPlan)->Arg(20)->Arg(100)->Arg(400)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_AmcastPlanReference(benchmark::State& state) {
  auto& fx = SharedFixture();
  const auto in =
      MakeInput(fx, static_cast<std::size_t>(state.range(0)), false);
  const auto latency = OracleFn(fx);
  for (auto _ : state) {
    const auto r = BuildAmcastTreeReference(in, latency);
    benchmark::DoNotOptimize(r.height);
  }
}
BENCHMARK(BM_AmcastPlanReference)->Arg(20)->Arg(100)->Arg(400)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// Matrix built once outside the loop: the planner's cost with the fill
// amortised away, e.g. when several strategies plan the same session.
void BM_AmcastPlanPrebuiltMatrix(benchmark::State& state) {
  auto& fx = SharedFixture();
  const auto in =
      MakeInput(fx, static_cast<std::size_t>(state.range(0)), false);
  std::vector<alm::ParticipantId> core;
  core.push_back(in.root);
  core.insert(core.end(), in.members.begin(), in.members.end());
  const alm::LatencyMatrix matrix(in.degree_bounds.size(), core,
                                  OracleFn(fx));
  for (auto _ : state) {
    const auto r = BuildAmcastTree(in, matrix);
    benchmark::DoNotOptimize(r.height);
  }
}
BENCHMARK(BM_AmcastPlanPrebuiltMatrix)->Arg(20)->Arg(100)->Arg(400)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------- helper-aware planning --

void BM_AmcastPlanWithHelpers(benchmark::State& state) {
  auto& fx = SharedFixture();
  const auto in =
      MakeInput(fx, static_cast<std::size_t>(state.range(0)), true);
  const auto latency = OracleFn(fx);
  alm::AmcastOptions opt;
  opt.selection = alm::HelperSelection::kMinimaxHeuristic;
  for (auto _ : state) {
    const auto r = BuildAmcastTree(in, latency, opt);
    benchmark::DoNotOptimize(r.height);
  }
}
BENCHMARK(BM_AmcastPlanWithHelpers)->Arg(20)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_AmcastPlanWithHelpersReference(benchmark::State& state) {
  auto& fx = SharedFixture();
  const auto in =
      MakeInput(fx, static_cast<std::size_t>(state.range(0)), true);
  const auto latency = OracleFn(fx);
  alm::AmcastOptions opt;
  opt.selection = alm::HelperSelection::kMinimaxHeuristic;
  for (auto _ : state) {
    const auto r = BuildAmcastTreeReference(in, latency, opt);
    benchmark::DoNotOptimize(r.height);
  }
}
BENCHMARK(BM_AmcastPlanWithHelpersReference)->Arg(20)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------- adjustment --

void BM_AdjustTree(benchmark::State& state) {
  auto& fx = SharedFixture();
  const auto in =
      MakeInput(fx, static_cast<std::size_t>(state.range(0)), false);
  const auto latency = OracleFn(fx);
  const auto built = BuildAmcastTree(in, latency);
  for (auto _ : state) {
    auto tree = built.tree;
    const auto stats = AdjustTree(tree, fx.bounds, latency);
    benchmark::DoNotOptimize(stats.final_height);
  }
}
BENCHMARK(BM_AdjustTree)->Arg(20)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------- matrix fill --

void BM_LatencyMatrixBuild(benchmark::State& state) {
  auto& fx = SharedFixture();
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  const auto idx = rng.SampleIndices(fx.topo.host_count(), n);
  const std::vector<alm::ParticipantId> ids(idx.begin(), idx.end());
  const auto latency = OracleFn(fx);
  for (auto _ : state) {
    const alm::LatencyMatrix matrix(fx.topo.host_count(), ids, latency);
    benchmark::DoNotOptimize(matrix.size());
  }
}
BENCHMARK(BM_LatencyMatrixBuild)->Arg(100)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------- transport overhead --

// Cost of one message through the bus: schedule + deliver, faults off.
// This is the per-message tax the unified transport adds over protocols
// scheduling their own callbacks; items_per_second is the bus throughput.
void BM_TransportThroughput(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim(1);
  sim::Message msg;
  msg.src_host = 0;
  msg.dst_host = 1;
  msg.protocol = sim::Protocol::kOther;
  msg.bytes = 100;
  std::size_t delivered = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i)
      sim.transport().Send(msg, [&delivered] { ++delivered; });
    sim.Run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_TransportThroughput)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

// Same bus with the full fault pipeline on (loss draw + jitter draw +
// per-link table + a live trace sink): the worst-case per-message cost.
void BM_TransportThroughputFaults(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim(1);
  sim.transport().faults().loss_probability = 0.01;
  sim.transport().faults().jitter_ms = 5.0;
  sim.transport().SetLinkLoss(2, 3, 0.5);  // non-empty per-link table
  sim::TraceSink trace(1 << 12);
  trace.set_clock([&sim] { return sim.now(); });
  sim.transport().set_trace(&trace);
  sim::Message msg;
  msg.src_host = 0;
  msg.dst_host = 1;
  msg.protocol = sim::Protocol::kOther;
  msg.bytes = 100;
  std::size_t delivered = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i)
      sim.transport().Send(msg, [&delivered] { ++delivered; });
    sim.Run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_TransportThroughputFaults)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------ registry overhead --

// BM_TransportThroughput with the metrics registry attached: each send now
// bumps per-protocol counters and inflight gauges. The acceptance bar for
// the observability layer is <5% over the uninstrumented bus — compare the
// per-size real_time against BM_TransportThroughput.
void BM_TransportThroughputMetrics(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim(1);
  sim.EnableMetrics();
  sim::Message msg;
  msg.src_host = 0;
  msg.dst_host = 1;
  msg.protocol = sim::Protocol::kOther;
  msg.bytes = 100;
  std::size_t delivered = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i)
      sim.transport().Send(msg, [&delivered] { ++delivered; });
    sim.Run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_TransportThroughputMetrics)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

// DB-MHT build (PlanSession) bare vs with a registry attached — the cost
// of the alm.plan_ms ScopeTimer plus the handful of end-of-plan records.
alm::PlanInput MakePlanInput(const PlanFixture& fx, std::size_t group) {
  const auto in = MakeInput(fx, group, false);
  alm::PlanInput pin;
  pin.degree_bounds = in.degree_bounds;
  pin.root = in.root;
  pin.members = in.members;
  pin.true_latency = OracleFn(fx);
  return pin;
}

void BM_PlanSession(benchmark::State& state) {
  auto& fx = SharedFixture();
  const auto pin =
      MakePlanInput(fx, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto r = PlanSession(pin, alm::Strategy::kAmcast);
    benchmark::DoNotOptimize(r.height_true);
  }
}
BENCHMARK(BM_PlanSession)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_PlanSessionMetrics(benchmark::State& state) {
  auto& fx = SharedFixture();
  auto pin = MakePlanInput(fx, static_cast<std::size_t>(state.range(0)));
  obs::MetricsRegistry registry;
  pin.metrics = &registry;
  for (auto _ : state) {
    const auto r = PlanSession(pin, alm::Strategy::kAmcast);
    benchmark::DoNotOptimize(r.height_true);
  }
}
BENCHMARK(BM_PlanSessionMetrics)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// SOMO gather + dissemination over a live ring, bare vs with an
// AlertEngine evaluating the `alert` experiment's two in-band rules every
// half cycle. The twin prices the whole alerting layer on the monitoring
// path — probe closures walking the disseminated view included — and
// tools/check_bench_overhead.py holds the ratio under the same 5% bar as
// the metrics registry.
void RunSomoGather(benchmark::State& state, bool with_alerts) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim(1);
  dht::Ring ring(8);
  for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();
  somo::SomoConfig cfg;
  cfg.fanout = 8;
  cfg.report_interval_ms = 1000.0;
  cfg.disseminate = true;
  somo::SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex node) {
    somo::NodeReport r;
    r.node = node;
    r.host = ring.node(node).host();
    r.generated_at = sim.now();
    r.telemetry.msgs_sent = node;
    r.telemetry.sampled_at = sim.now();
    return r;
  });

  obs::AlertEngine engine;
  const dht::NodeIndex observer = ring.size() - 1;
  if (with_alerts) {
    obs::AlertRule stale;
    stale.name = "view.stale";
    stale.threshold = 1e12;  // never fires: we price evaluation, not repair
    stale.probe = [&somo, observer] {
      const double v = somo.ViewStalenessMs(observer);
      return std::isfinite(v) ? v : 0.0;
    };
    engine.AddRule(std::move(stale));
    obs::AlertRule susp;
    susp.name = "suspect.rate";
    susp.threshold = 1e12;
    susp.probe = [&somo, observer] {
      const auto& v = somo.ViewAt(observer);
      if (!v.valid() || v.view->empty()) return 0.0;
      double total = 0.0;
      for (std::size_t i = 0; i < v.view->size(); ++i) {
        if (const auto* tel = v.view->telemetry(i))
          total += static_cast<double>(tel->suspects);
      }
      return total / static_cast<double>(v.view->size());
    };
    engine.AddRule(std::move(susp));
    sim.Every(500.0, 500.0, [&engine, &sim] { engine.Evaluate(sim.now()); });
  }

  somo.Start();
  double horizon = 0.0;
  for (auto _ : state) {
    horizon += 10000.0;  // ten reporting cycles per iteration
    sim.RunUntil(horizon);
    benchmark::DoNotOptimize(somo.gathers_completed());
  }
  somo.Stop();
}

void BM_SomoGather(benchmark::State& state) {
  RunSomoGather(state, /*with_alerts=*/false);
}
BENCHMARK(BM_SomoGather)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_SomoGatherAlerts(benchmark::State& state) {
  RunSomoGather(state, /*with_alerts=*/true);
}
BENCHMARK(BM_SomoGatherAlerts)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// The mesh planner on the same instances: build + refine + extract. Not a
// like-for-like race against BM_PlanSession (different overlay, different
// robustness story — see docs/PROTOCOLS.md) but the rows pin the cost of
// the self-organizing baseline so `compare` runs stay predictable.
void BM_PlanSessionMesh(benchmark::State& state) {
  auto& fx = SharedFixture();
  const auto pin =
      MakePlanInput(fx, static_cast<std::size_t>(state.range(0)));
  alm::MeshPlanner planner;
  for (auto _ : state) {
    const auto r = planner.Plan(pin);
    benchmark::DoNotOptimize(r.height_true);
  }
}
BENCHMARK(BM_PlanSessionMesh)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// After the benchmarks, run a short fully-instrumented workload and write
// its registry snapshot next to the benchmark JSON, so every bench run
// ships an example p2pmetrics/v1 artifact (and a quick smoke check that
// the instrumented transport still behaves).
void WriteMetricsSnapshot(const char* path) {
  sim::Simulation sim(1);
  sim.EnableMetrics();
  sim::Message msg;
  msg.src_host = 0;
  msg.dst_host = 1;
  msg.protocol = sim::Protocol::kOther;
  msg.bytes = 100;
  for (std::size_t i = 0; i < 10000; ++i) sim.transport().Send(msg, [] {});
  sim.Run();
  auto& fx = SharedFixture();
  auto pin = MakePlanInput(fx, 100);
  pin.metrics = &sim.metrics();
  PlanSession(pin, alm::Strategy::kAmcast);
  const std::string json = sim.metrics().SnapshotJson(/*include_profile=*/true);
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path);
}

}  // namespace
}  // namespace p2p

int main(int argc, char** argv) {
  // Default to JSON-on-disk so `bench_to_json` with no arguments produces
  // BENCH_alm.json; explicit --benchmark_out wins.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  static std::string out_flag = "--benchmark_out=BENCH_alm.json";
  static std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int out_argc = static_cast<int>(args.size());
  benchmark::Initialize(&out_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(out_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  p2p::WriteMetricsSnapshot("BENCH_metrics_snapshot.json");
  return 0;
}
