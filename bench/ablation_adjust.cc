// Ablation (DESIGN.md §6): the three tree-adjustment move classes of §5.2
// footnote 2 — (a) reparent the highest node, (b) swap it with another
// leaf, (c) swap its parent's subtree — enabled individually and together,
// on top of both plain AMCast and the Critical helper plan.
#include <cstdio>
#include <vector>

#include "alm/adjust.h"
#include "alm/bounds.h"
#include "alm/critical.h"
#include "bench/bench_common.h"

namespace p2p {
namespace {

constexpr std::size_t kRuns = 10;
constexpr std::size_t kGroup = 50;

struct MoveSet {
  const char* name;
  bool a, b, c;
};

}  // namespace
}  // namespace p2p

int main(int argc, char** argv) {
  using namespace p2p;
  bench::CsvSink csv(argc, argv);
  bench::PrintHeader("Ablation — adjustment move classes (a)/(b)/(c)",
                     "§5.2 footnote 2; 'adjust' series in Fig. 8");

  util::ThreadPool threads;
  pool::ResourcePool rp(bench::PaperConfig(57), &threads);

  const std::vector<MoveSet> kSets = {
      {"none", false, false, false}, {"(a) reparent", true, false, false},
      {"(b) leaf swap", false, true, false},
      {"(c) subtree swap", false, false, true},
      {"(a)+(b)", true, true, false}, {"all", true, true, true},
  };

  util::Table table({"moves", "improvement_amcast", "improvement_critical",
                     "moves_applied"});
  for (const auto& set : kSets) {
    util::Accumulator impr_amcast, impr_critical, applied;
    for (std::size_t run = 0; run < kRuns; ++run) {
      util::Rng rng(800 + run);
      const auto idx = rng.SampleIndices(rp.size(), kGroup);
      alm::PlanInput in;
      in.degree_bounds = rp.degree_bounds();
      in.root = idx[0];
      in.members.assign(idx.begin() + 1, idx.end());
      std::vector<char> is_member(rp.size(), 0);
      for (const auto v : idx) is_member[v] = 1;
      for (std::size_t v = 0; v < rp.size(); ++v) {
        if (!is_member[v] && rp.degree_bound(v) >= 4)
          in.helper_candidates.push_back(v);
      }
      in.true_latency = rp.TrueLatencyFn();

      const double base =
          PlanSession(in, alm::Strategy::kAmcast).height_true;

      alm::AdjustOptions opt;
      opt.enable_reparent = set.a;
      opt.enable_leaf_swap = set.b;
      opt.enable_subtree_swap = set.c;

      // AMCast + selected moves.
      {
        auto r = PlanSession(in, alm::Strategy::kAmcast);
        const auto stats = AdjustTree(r.tree, in.degree_bounds,
                                      in.true_latency, opt);
        impr_amcast.Add(alm::Improvement(
            base, r.tree.Height(in.true_latency)));
        applied.Add(static_cast<double>(stats.total_moves()));
      }
      // Critical + selected moves.
      {
        auto r = PlanSession(in, alm::Strategy::kCritical);
        AdjustTree(r.tree, in.degree_bounds, in.true_latency, opt);
        impr_critical.Add(alm::Improvement(
            base, r.tree.Height(in.true_latency)));
      }
    }
    table.AddRow({std::string(set.name), impr_amcast.mean(),
                  impr_critical.mean(), applied.mean()});
  }
  std::printf("%s\n", table.ToText(3).c_str());
  std::printf(
      "Check: each move class alone helps a little (paper: adjust alone "
      "~5%% over baseline); combined moves help most; gains are larger on "
      "top of Critical than alone.\n");
  csv.Write(table, "ablation_adjust");
  return 0;
}
