// Figure 8: single-session tree-height improvement over AMCast vs group
// size, averaged over 20 runs — the paper's headline single-session
// result.
//
// Series: AMCast+adj, Critical, Critical+adj, Leafset, Leafset+adj, and
// the theoretical Bound (root with infinite degree).
//
// Expected shape: resource-pool strategies gain ~30 % for small-to-medium
// groups (paper: Leafset+adj ≈ 35 % at 20, >30 % at 100) and the gain
// shrinks for large groups where plain AMCast already has many members to
// work with; Bound sits at 40–50 %; adjustment is especially effective on
// top of Leafset.
#include <cstdio>
#include <mutex>
#include <vector>

#include "alm/bounds.h"
#include "alm/critical.h"
#include "bench/bench_common.h"

namespace p2p {
namespace {

constexpr std::size_t kRuns = 20;
const std::vector<std::size_t> kGroupSizes = {20, 50, 100, 200, 300, 400};

const std::vector<alm::Strategy> kStrategies = {
    alm::Strategy::kAmcastAdjust,   alm::Strategy::kCritical,
    alm::Strategy::kCriticalAdjust, alm::Strategy::kLeafset,
    alm::Strategy::kLeafsetAdjust,
};

struct CellStats {
  util::Accumulator improvement;
};

}  // namespace
}  // namespace p2p

int main(int argc, char** argv) {
  using namespace p2p;
  bench::CsvSink csv(argc, argv);
  bench::PrintHeader(
      "Figure 8 — single ALM session: improvement over AMCast vs group "
      "size",
      "Fig. 8: 1200-host pool, 20 runs, R=100, degree dist 2^-i");

  // improvement[strategy][group] plus the bound column.
  std::vector<std::vector<CellStats>> stats(
      kStrategies.size() + 1, std::vector<CellStats>(kGroupSizes.size()));
  std::mutex mu;

  util::ThreadPool threads;
  threads.ParallelFor(kRuns, [&](std::size_t run) {
    pool::ResourcePool rp(bench::PaperConfig(1000 + run), nullptr);
    util::Rng rng(5000 + run);
    for (std::size_t gi = 0; gi < kGroupSizes.size(); ++gi) {
      const std::size_t m = kGroupSizes[gi];
      const auto idx = rng.SampleIndices(rp.size(), m);
      alm::PlanInput in;
      in.degree_bounds = rp.degree_bounds();
      in.root = idx[0];
      in.members.assign(idx.begin() + 1, idx.end());
      std::vector<char> is_member(rp.size(), 0);
      for (const auto v : idx) is_member[v] = 1;
      for (std::size_t v = 0; v < rp.size(); ++v) {
        if (!is_member[v] && rp.degree_bound(v) >= 4)
          in.helper_candidates.push_back(v);
      }
      in.true_latency = rp.TrueLatencyFn();
      in.estimated_latency = rp.EstimatedLatencyFn();

      const double base =
          PlanSession(in, alm::Strategy::kAmcast).height_true;
      std::vector<double> improvements;
      improvements.reserve(kStrategies.size());
      for (const alm::Strategy s : kStrategies) {
        improvements.push_back(
            alm::Improvement(base, PlanSession(in, s).height_true));
      }
      const double bound = alm::Improvement(
          base, alm::IdealHeight(in.root, in.members, in.true_latency));

      std::lock_guard lock(mu);
      for (std::size_t si = 0; si < kStrategies.size(); ++si)
        stats[si][gi].improvement.Add(improvements[si]);
      stats[kStrategies.size()][gi].improvement.Add(bound);
    }
  });

  std::vector<std::string> header{"group"};
  for (const alm::Strategy s : kStrategies)
    header.push_back(StrategyName(s));
  header.push_back("Bound");
  util::Table table(header);
  for (std::size_t gi = 0; gi < kGroupSizes.size(); ++gi) {
    std::vector<util::Table::Cell> row{
        static_cast<long long>(kGroupSizes[gi])};
    for (std::size_t si = 0; si <= kStrategies.size(); ++si)
      row.emplace_back(stats[si][gi].improvement.mean());
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToText(3).c_str());
  std::printf(
      "Check: helper strategies (Critical/Leafset +adj) clearly beat "
      "AMCast+adj for small-to-medium groups and the gain shrinks as the "
      "group grows; Critical+adj approaches Bound; adjustment helps "
      "Leafset far more than Critical. (Our absolute numbers run ~5-10 "
      "points under the paper's because the AMCast baseline here is "
      "stronger — see EXPERIMENTS.md E3.)\n");
  csv.Write(table, "fig8_single_session");
  return 0;
}
