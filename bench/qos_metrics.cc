// §5.1 discusses several QoS criteria — "bandwidth bottleneck, maximal
// latency or variance of latencies" — and the paper optimises maximal
// latency. This bench shows what that choice costs on the OTHER axes:
// each strategy's trees measured under every metric at group size 20.
#include <cstdio>
#include <vector>

#include "alm/bounds.h"
#include "alm/critical.h"
#include "alm/metrics.h"
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace p2p;
  bench::CsvSink csv(argc, argv);
  bench::PrintHeader("QoS metrics across planning strategies",
                     "§5.1's alternative criteria, measured per strategy");

  util::ThreadPool threads;
  pool::ResourcePool rp(bench::PaperConfig(29), &threads);
  constexpr std::size_t kRuns = 10;

  const std::vector<alm::Strategy> kStrategies = {
      alm::Strategy::kAmcast, alm::Strategy::kAmcastAdjust,
      alm::Strategy::kCriticalAdjust, alm::Strategy::kLeafsetAdjust};

  util::Table table({"strategy", "max_height_ms", "mean_height_ms",
                     "height_stddev_ms", "total_edge_ms",
                     "bottleneck_kbps", "max_fanout", "helpers"});
  for (const alm::Strategy s : kStrategies) {
    util::Accumulator maxh, meanh, stddev, total, bottleneck, fanout,
        helpers;
    for (std::size_t run = 0; run < kRuns; ++run) {
      util::Rng rng(900 + run);
      const auto idx = rng.SampleIndices(rp.size(), 20);
      alm::PlanInput in;
      in.degree_bounds = rp.degree_bounds();
      in.root = idx[0];
      in.members.assign(idx.begin() + 1, idx.end());
      std::vector<char> is_member(rp.size(), 0);
      for (const auto v : idx) is_member[v] = 1;
      for (std::size_t v = 0; v < rp.size(); ++v) {
        if (!is_member[v] && rp.degree_bound(v) >= 4)
          in.helper_candidates.push_back(v);
      }
      in.true_latency = rp.TrueLatencyFn();
      in.estimated_latency = rp.EstimatedLatencyFn();
      const auto r = PlanSession(in, s);
      const auto m = ComputeTreeMetrics(
          r.tree, in.true_latency, [&](std::size_t a, std::size_t b) {
            return rp.bandwidths().PathBottleneckKbps(a, b);
          });
      maxh.Add(m.max_height_ms);
      meanh.Add(m.mean_height_ms);
      stddev.Add(m.height_stddev_ms);
      total.Add(m.total_edge_ms);
      bottleneck.Add(m.bottleneck_kbps);
      fanout.Add(static_cast<double>(m.max_fanout));
      helpers.Add(static_cast<double>(r.helpers_used));
    }
    table.AddRow({StrategyName(s), maxh.mean(), meanh.mean(),
                  stddev.mean(), total.mean(), bottleneck.mean(),
                  fanout.mean(), helpers.mean()});
  }
  std::printf("%s\n", table.ToText(1).c_str());
  std::printf(
      "Check: helper strategies cut max height (the optimised objective) "
      "and usually mean height and spread with it; total edge cost and "
      "the sustained-bandwidth bottleneck are NOT optimised and may move "
      "either way — §5.1's point that the criteria genuinely differ.\n");
  csv.Write(table, "qos_metrics");
  return 0;
}
